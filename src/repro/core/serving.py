"""Multi-tenant serving: warm mapping sessions behind one endpoint.

A :class:`~repro.core.session.MarsSession` keeps one workload's search
state warm. A serving deployment (the Herald / MAGMA multi-DNN setting
in PAPERS.md) answers mapping requests for *many* workloads — several
networks behind one endpoint, A/B'd variants of one network, merged
multi-DNN graphs from :func:`repro.dnn.multi.combine_graphs` — and
rebuilding a session per request would throw the warm caches away
exactly when they pay off.

Two frontends close that gap:

* :class:`MultiModelSession` — the in-process registry: it routes each
  request to its tenant's warm session, building sessions lazily and
  evicting least-recently-used tenants beyond a configurable
  ``capacity``. Tenants are **content-addressed**: the key is
  ``(graph.fingerprint(), topology.fingerprint(), objective,
  cost_model.token())``, so two structurally identical workloads share
  one warm tenant — and, unlike the object-identity keys this registry
  used previously, the key survives a pickle round-trip across a
  process boundary. Workloads priced by different cost models never
  share a tenant.
* :class:`ShardedServing` — the multi-process frontend: N shard worker
  processes, each hosting one ``MultiModelSession`` rebuilt from the
  same shipped :class:`~repro.core.config.SearchConfig`. Tenants are
  placed by fingerprint hash (sticky, so a tenant's warm caches live on
  exactly one shard) and searches on different shards run truly
  concurrently.

Routing never changes results: every tenant search — in-process,
sharded, or re-run after a shard crash — is bit-identical to a fresh
:class:`~repro.core.mapper.Mars` run with the same configuration and
seed (property-tested in ``tests/core/test_serving.py`` and
``tests/core/test_sharded.py``).

>>> from repro.core.serving import MultiModelSession
>>> from repro.dnn import build_model
>>> from repro.system import f1_16xlarge
>>> registry = MultiModelSession(f1_16xlarge(), capacity=4)
>>> vgg, squeeze = build_model("vgg16"), build_model("squeezenet")
>>> best = {
...     g.name: registry.search(g, seed=0) for g in (vgg, squeeze)
... }  # doctest: +SKIP
"""

from __future__ import annotations

import atexit
import multiprocessing
# Imported for its side effect: ``multiprocessing.util`` registers the
# atexit hook that joins non-daemonic children. It must be registered
# BEFORE this module's own atexit hook (atexit is LIFO), or abandoned
# shard workers would be joined before anything asks them to exit.
import multiprocessing.util  # noqa: F401
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, replace
from functools import cached_property

from repro.accelerators.base import AcceleratorDesign
from repro.core.config import (
    DEFAULT_CAPACITY,
    DEFAULT_SUBPROBLEM_CAPACITY,
    SearchConfig,
)
from repro.core.costmodel import CostModelSpec
from repro.core.evaluator import EvaluatorOptions
from repro.core.faults import execute_fault
from repro.core.ga.level1 import SearchBudget
from repro.core.health import (
    BeaconEmitter,
    LivenessPolicy,
    WorkerHung,
    stop_process,
    wait_for_reply,
)
from repro.core.session import MarsResult, MarsSession, SessionStats
from repro.dnn.graph import ComputationGraph
from repro.system.topology import SystemTopology
from repro.utils.rng import stable_seed
from repro.utils.validation import require, require_positive

__all__ = [
    "MultiModelSession",
    "ServingStats",
    "ShardedServing",
    "ShardedServingStats",
]


def _add_tenant_label(
    per_tenant: dict[str, SessionStats],
    base: str,
    stats: SessionStats,
    renumber: bool = False,
) -> None:
    """Insert ``stats`` under ``base``, ``@n``-suffixing on collision.

    ``renumber=True`` is for cross-registry aggregation, where ``base``
    may itself be an ``@n``-suffixed label from another shard: the
    suffix is stripped first so labels renumber from the root instead
    of stacking into ambiguous ``foo@2@2``. Registry-local callers
    keep ``renumber=False`` — there ``base`` is a real graph name, and
    a graph genuinely named ``foo@2`` must not be relabeled ``foo``.
    """
    if renumber:
        root, _, suffix = base.rpartition("@")
        if root and suffix.isdigit():
            base = root
    label, counter = base, 2
    while label in per_tenant:
        label = f"{base}@{counter}"
        counter += 1
    per_tenant[label] = stats


@dataclass(frozen=True)
class ServingStats:
    """Registry-level counters of a :class:`MultiModelSession`."""

    #: Maximum number of live tenant sessions.
    capacity: int
    #: Tenant sessions currently alive.
    tenants: int
    #: Requests routed to an already-warm tenant session.
    hits: int
    #: Requests that built a tenant session (first sight or rebuilt
    #: after eviction).
    misses: int
    #: Tenant sessions closed under capacity pressure (explicit
    #: ``evict()`` calls are not counted — this gauges whether
    #: ``capacity`` is undersized).
    evictions: int
    #: Searches routed through the registry so far.
    searches: int
    #: Per-tenant warm-state counters, keyed by tenant label (graph
    #: name, ``:objective``-suffixed for non-default objectives and
    #: ``@n``-suffixed when distinct graph contents share a name).
    per_tenant: dict[str, SessionStats]
    #: Cumulative counters of every tenant session this registry has
    #: retired — capacity evictions, explicit ``evict()`` calls and
    #: ``close()`` all fold the departing session's ``SessionStats``
    #: here, so hit-rate history survives the sessions themselves.
    retired: SessionStats

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    @property
    def lifetime(self) -> SessionStats:
        """Live and retired tenant counters folded together — the
        registry's whole history, robust to eviction churn."""
        total = self.retired
        for stats in self.per_tenant.values():
            total = total.merge(stats)
        return total

    def merge(self, other: "ServingStats") -> "ServingStats":
        """Two registries' counters folded together (shard aggregation).

        ``capacity`` sums (it bounds the union of the two tenant
        populations); per-tenant labels colliding across registries are
        ``@n``-deduplicated like same-named tenants within one.
        """
        per_tenant = dict(self.per_tenant)
        for base, stats in other.per_tenant.items():
            _add_tenant_label(per_tenant, base, stats, renumber=True)
        return ServingStats(
            capacity=self.capacity + other.capacity,
            tenants=self.tenants + other.tenants,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            searches=self.searches + other.searches,
            per_tenant=per_tenant,
            retired=self.retired.merge(other.retired),
        )


@dataclass
class _Tenant:
    """A live tenant: the representative graph plus its warm session."""

    graph: ComputationGraph
    session: MarsSession


class MultiModelSession:
    """An LRU registry of warm :class:`MarsSession`s, one per tenant.

    The registry fixes everything tenants share — the system topology,
    design catalog, GA budgets, cost-model options and backend knobs
    (one :class:`~repro.core.config.SearchConfig`) — and keys tenants
    on what varies per request: the workload graph, an optional
    per-request topology override, and the objective. :meth:`search` is
    the serving entry point; :meth:`session_for` exposes the underlying
    session when a caller needs the warm evaluator or per-tenant cache
    control.

    Tenant identity is **content-addressed**: graphs and topologies are
    keyed by :meth:`~repro.dnn.graph.ComputationGraph.fingerprint` /
    :meth:`~repro.system.topology.SystemTopology.fingerprint`, not
    object identity. Structurally identical workloads therefore share
    one warm tenant (an unpickled copy of a graph routes to the same
    session as its original — the property the sharded frontend is
    built on), and the session serves them bit-identically because the
    fingerprint covers everything the search reads.

    Capacity and eviction: at most ``capacity`` sessions stay alive;
    building one beyond that closes the least-recently-*used* tenant
    (its worker pool shuts down, its warm caches are dropped). Eviction
    is invisible to results — a re-request rebuilds the tenant cold and
    searches bit-identically — it only trades memory for warm-up
    wall-clock. Departing tenants' counters fold into
    :attr:`ServingStats.retired`, so long-lived deployments keep honest
    hit-rate history across eviction churn.

    Lifecycle: after :meth:`close`, routing and mutation
    (:meth:`search`, :meth:`session_for`, :meth:`evict`) raise, while
    read-only queries (``len``, ``in``, :meth:`stats`) honestly report
    the empty, closed registry.

    Args:
        topology: Default system for every tenant (overridable per
            request).
        designs: Design catalog for adaptive systems (Table II default
            inside each session).
        budget: GA budgets for the two levels.
        options: Cost-model knobs.
        objective: Default objective; per-request override allowed.
        workers: Override both levels' evaluation parallelism. Each
            tenant session owns its pool for its lifetime.
        cache: Override both levels' fitness memoization.
        layer_cache: Override :attr:`EvaluatorOptions.layer_cache`.
        capacity: Maximum number of live tenant sessions.
        subproblem_capacity: Per-tenant LRU bound on the cross-search
            sub-problem cache.
        config: A prebuilt :class:`~repro.core.config.SearchConfig`;
            when given it supersedes every other keyword except
            ``topology`` (prefer :meth:`from_config`).
    """

    DEFAULT_CAPACITY = DEFAULT_CAPACITY

    def __init__(
        self,
        topology: SystemTopology,
        designs: list[AcceleratorDesign] | None = None,
        budget: SearchBudget | None = None,
        options: EvaluatorOptions | None = None,
        objective: str = "latency",
        workers: int | None = None,
        cache: bool | None = None,
        layer_cache: bool | None = None,
        capacity: int = DEFAULT_CAPACITY,
        subproblem_capacity: int = DEFAULT_SUBPROBLEM_CAPACITY,
        cost_model: CostModelSpec | None = None,
        config: SearchConfig | None = None,
    ) -> None:
        if config is None:
            config = SearchConfig.from_kwargs(
                designs=designs,
                budget=budget,
                options=options,
                cost_model=cost_model,
                objective=objective,
                workers=workers,
                cache=cache,
                layer_cache=layer_cache,
                capacity=capacity,
                subproblem_capacity=subproblem_capacity,
            )
        #: The canonical :class:`~repro.core.config.SearchConfig` every
        #: tenant session of this registry is built from.
        self.config = config.canonical()
        self.topology = topology
        self.objective = self.config.objective
        self.capacity = self.config.capacity
        self._tenants: OrderedDict[tuple, _Tenant] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._searches = 0
        self._retired = SessionStats.zero()
        self._closed = False

    @classmethod
    def from_config(
        cls, topology: SystemTopology, config: SearchConfig
    ) -> "MultiModelSession":
        """Build a registry from a canonical config bundle.

        The kwarg constructor is a thin adapter over the same bundle;
        this is the spelling the sharded frontend ships to its workers.
        """
        return cls(topology, config=config)

    # ------------------------------------------------------------------
    # Tenant routing
    # ------------------------------------------------------------------

    def _key(
        self,
        graph: ComputationGraph,
        topology: SystemTopology,
        objective: str,
    ) -> tuple:
        # Content-addressed: fingerprints survive pickling, so the same
        # workload routes to the same tenant no matter which process
        # (or which equal copy of the graph object) posed the request.
        # The cost-model token rides along so sessions priced by
        # different models can never share a tenant — the registry's
        # config fixes one model today, but the key must stay honest
        # under per-request config replacement (the objective already
        # varies per request) and under any cross-registry aggregation.
        return (
            graph.fingerprint(),
            topology.fingerprint(),
            objective,
            self.config.cost_model.token(),
        )

    def session_for(
        self,
        graph: ComputationGraph,
        topology: SystemTopology | None = None,
        objective: str | None = None,
    ) -> MarsSession:
        """The tenant's warm session, built on first sight.

        Refreshes the tenant's LRU recency; may evict another tenant
        when a new session pushes the registry past ``capacity``.
        """
        require(not self._closed, "serving registry is closed")
        topology = topology if topology is not None else self.topology
        objective = objective if objective is not None else self.objective
        key = self._key(graph, topology, objective)
        tenant = self._tenants.get(key)
        if tenant is not None:
            self._hits += 1
            self._tenants.move_to_end(key)
            return tenant.session
        self._misses += 1
        config = self.config
        if objective != config.objective:
            config = replace(config, objective=objective)
        session = MarsSession.from_config(graph, topology, config)
        self._tenants[key] = _Tenant(graph=graph, session=session)
        while len(self._tenants) > self.capacity:
            _, evicted = self._tenants.popitem(last=False)
            self._retire(evicted.session)
            self._evictions += 1
        return session

    def _retire(self, session: MarsSession) -> None:
        """Close a departing tenant session, folding its counters into
        the cumulative ``retired`` aggregate first."""
        self._retired = self._retired.merge(session.stats)
        session.close()

    def search(
        self,
        graph: ComputationGraph,
        seed: int = 0,
        topology: SystemTopology | None = None,
        objective: str | None = None,
        progress=None,
    ) -> MarsResult:
        """Route one search to its tenant's warm session.

        Bit-identical to a fresh :class:`~repro.core.mapper.Mars`
        search with the same configuration and seed, whether the tenant
        was warm, cold, or rebuilt after eviction. ``progress`` is the
        pure-observation liveness callback forwarded down to
        :meth:`MarsSession.search` — shard workers pass their heartbeat
        emitter here.
        """
        result = self.session_for(graph, topology, objective).search(
            seed=seed, progress=progress
        )
        self._searches += 1
        return result

    def evict(
        self,
        graph: ComputationGraph,
        topology: SystemTopology | None = None,
        objective: str | None = None,
    ) -> bool:
        """Explicitly close and drop one tenant; True if it was alive.

        Raises on a closed registry, exactly like :meth:`session_for` —
        a closed registry accepts neither routing nor tenant mutation.
        """
        require(not self._closed, "serving registry is closed")
        topology = topology if topology is not None else self.topology
        objective = objective if objective is not None else self.objective
        tenant = self._tenants.pop(
            self._key(graph, topology, objective), None
        )
        if tenant is None:
            return False
        self._retire(tenant.session)
        # Deliberate evictions stay out of ``ServingStats.evictions`` —
        # that counter measures capacity *pressure*, the signal for
        # sizing ``capacity``, and caller-initiated drops are not it.
        return True

    def __contains__(self, graph: ComputationGraph) -> bool:
        """Whether ``graph`` has a live tenant under the default
        topology and objective (always False once closed — a closed
        registry holds no tenants)."""
        if self._closed:
            return False
        return (
            self._key(graph, self.topology, self.objective) in self._tenants
        )

    def __len__(self) -> int:
        return len(self._tenants)

    # ------------------------------------------------------------------
    # Observability and lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> ServingStats:
        """Registry counters plus per-tenant session counters."""
        per_tenant: dict[str, SessionStats] = {}
        for (_, _, objective, _), tenant in self._tenants.items():
            base = tenant.graph.name
            if objective != self.objective:
                base = f"{base}:{objective}"
            _add_tenant_label(per_tenant, base, tenant.session.stats)
        return ServingStats(
            capacity=self.capacity,
            tenants=len(self._tenants),
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            searches=self._searches,
            per_tenant=per_tenant,
            retired=self._retired,
        )

    def close(self) -> None:
        """Retire every tenant session and refuse further routing."""
        if self._closed:
            return
        self._closed = True
        for tenant in self._tenants.values():
            self._retire(tenant.session)
        self._tenants.clear()

    def __enter__(self) -> "MultiModelSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Sharded multi-process serving
# ----------------------------------------------------------------------


def _shard_worker(
    conn,
    topology: SystemTopology,
    config: SearchConfig,
    shard_index: int = 0,
    incarnation: int = 0,
    liveness: LivenessPolicy | None = None,
) -> None:
    """One shard process: a content-addressed registry behind a pipe.

    Requests arrive as tuples — ``("search", graph, seed, topology,
    objective)``, ``("search_fp", fingerprint, seed, topology,
    objective)``, ``("stats",)`` or ``("shutdown",)`` — and every
    response is a ``(status, payload)`` pair. The registry is rebuilt
    from the shipped :class:`~repro.core.config.SearchConfig`, so a
    shard is configured bit-identically to the frontend that spawned it
    (and to any replacement spawned after a crash).

    Interned-graph handshake: the first request for a workload ships
    the full graph, which the worker interns under its content
    fingerprint; every later request for the same workload ships the
    fingerprint alone (``"search_fp"``), sparing the per-request graph
    pickle. A fingerprint the worker does not know (the frontend raced
    a respawn, or the graph was LRU-evicted) answers
    ``("unknown_fp", fp)`` so the frontend re-ships the full graph
    instead of failing the request.

    The interned dict is LRU-bounded to the registry's tenant
    ``capacity`` — a worker that outlives many distinct workloads must
    not retain every graph it ever saw when the registry itself keeps
    only ``capacity`` warm sessions. Eviction only costs one re-ship on
    the workload's next request, through the same ``unknown_fp`` path
    a respawn uses.

    Liveness: with a beacon-enabled ``liveness`` policy the worker
    sends throttled ``("beacon", phase, count)`` heartbeats over this
    same pipe while a search runs (between level-1 generations and
    after level-2 sub-problem solves), so the frontend's watchdog can
    tell a long search from a wedge. ``shard_index``/``incarnation``
    identify this process to ``config.faults``: a matching
    :class:`~repro.core.faults.FaultSpec` fires deterministically
    before the Nth search request of this incarnation is served.
    """
    registry = MultiModelSession.from_config(topology, config)
    interned: OrderedDict[str, ComputationGraph] = OrderedDict()
    beacon = (
        BeaconEmitter(conn, liveness.beacon_interval)
        if liveness is not None and liveness.beacons
        else None
    )
    plan = config.faults
    served = 0
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "shutdown":
                try:
                    conn.send(("bye", None))
                except (BrokenPipeError, OSError):
                    pass
                break
            if kind == "stats":
                conn.send(("stats", registry.stats()))
                continue
            if kind == "search_fp":
                _, fp, seed, topology_override, objective = message
                graph = interned.get(fp)
                if graph is None:
                    conn.send(("unknown_fp", fp))
                    continue
                interned.move_to_end(fp)
            else:
                _, graph, seed, topology_override, objective = message
                fp = graph.fingerprint()
                interned[fp] = graph
                interned.move_to_end(fp)
                while len(interned) > registry.capacity:
                    interned.popitem(last=False)
            if plan is not None:
                spec = plan.fault_for(shard_index, incarnation, served)
                if spec is not None and not execute_fault(spec, conn):
                    # The fault produced (or suppressed) the reply
                    # itself; the request still counts as served so
                    # later fault coordinates stay stable.
                    served += 1
                    continue
            served += 1
            try:
                result = registry.search(
                    graph,
                    seed=seed,
                    topology=topology_override,
                    objective=objective,
                    progress=beacon,
                )
                conn.send(("ok", result))
            except Exception as exc:  # tenant errors travel to the caller
                conn.send(("error", exc))
    finally:
        registry.close()
        conn.close()


#: Every status a live worker may legally answer with.
_VALID_STATUSES = frozenset({"ok", "error", "stats", "unknown_fp", "bye"})


def _well_formed(response) -> bool:
    """Whether a worker reply honors the ``(status, payload)`` protocol.

    Anything else — wrong container, wrong arity, unknown status — is
    protocol desync: the stream can no longer be trusted to frame
    messages, so the round-trip treats the worker like a crash (kill,
    respawn, resend) instead of guessing.
    """
    return (
        isinstance(response, tuple)
        and len(response) == 2
        and response[0] in _VALID_STATUSES
    )


class _ShardHandle:
    """Frontend-side state of one shard: process, pipe, request queue."""

    __slots__ = (
        "index",
        "process",
        "conn",
        "queue",
        "thread",
        "respawns",
        "restarts",
        "submitted",
        "interned",
        "graph_ships",
        "fp_sends",
        "drained",
        "swallowed",
        "last_backoff",
        "hangs",
        "escalations",
        "corrupt",
        "beacons",
        "unacked",
        "fresh",
        "waiting_since",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.conn = None
        self.queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self.thread: threading.Thread | None = None
        #: Crash-triggered cold respawns (bounded by the frontend's
        #: respawn limit; beyond it the shard serves inline).
        self.respawns = 0
        #: Operator-requested restarts (not counted against the limit).
        self.restarts = 0
        #: Requests accepted for this shard by the frontend.
        self.submitted = 0
        #: Graph fingerprints the *current* worker process has interned
        #: — emptied whenever the worker is reaped, because a cold
        #: replacement knows none of them.
        self.interned: set[str] = set()
        #: Full-graph payloads shipped to this shard (once per workload
        #: per worker incarnation — the handshake's whole point).
        self.graph_ships = 0
        #: Fingerprint-only requests shipped (the pickles saved).
        self.fp_sends = 0
        #: True while the shard is deliberately drained by autoscaling
        #: (distinguishes a scaled-down worker from a crashed one — a
        #: drained shard respawns on demand instead of degrading to the
        #: inline fallback).
        self.drained = False
        #: Exceptions absorbed on this shard's teardown/respawn paths.
        #: Each was previously a silent ``pass`` — deliberately not
        #: propagated (the caller still gets a result through a respawn
        #: or the inline fallback), but a broken environment must be
        #: *visible*, so every swallow counts here and surfaces in
        #: ``stats()``.
        self.swallowed = 0
        #: The most recent crash-respawn backoff delay applied before
        #: replacing this shard's worker (seconds; 0.0 until the first
        #: crash respawn).
        self.last_backoff = 0.0
        #: Workers of this shard classified hung (silent past the stall
        #: budget) and killed by the watchdog.
        self.hangs = 0
        #: Reaps that needed the SIGKILL rung — the worker survived
        #: both the graceful join and SIGTERM.
        self.escalations = 0
        #: Malformed replies received (protocol desync); each one costs
        #: the worker its life and the request a respawn + resend.
        self.corrupt = 0
        #: Heartbeat beacons consumed from this shard's workers.
        self.beacons = 0
        #: Graceful shutdowns the worker never acked with ``"bye"``.
        self.unacked = 0
        #: True until the current worker incarnation sends anything —
        #: its first reply gets the (larger) spawn-grace budget.
        self.fresh = True
        #: Health-clock timestamp since which the dispatcher has been
        #: waiting on this worker (None when not waiting) — the
        #: observability hook tests poll to synchronize with an
        #: in-flight request.
        self.waiting_since = None

    @property
    def alive(self) -> bool:
        return self.process is not None


@dataclass(frozen=True)
class ShardedServingStats:
    """Aggregated counters of a :class:`ShardedServing` frontend.

    Per-shard entries are the shard registries' own
    :class:`ServingStats`; a ``None`` entry marks a shard whose worker
    exhausted its respawn limit (its traffic is served by the inline
    fallback registry, reported under :attr:`fallback`). A crashed
    shard's counters restart from zero with its replacement process —
    only frontend-side counters (:attr:`respawns`, :attr:`restarts`,
    :attr:`submitted`) are guaranteed lifetime-cumulative.
    """

    shards: int
    per_shard: tuple[ServingStats | None, ...]
    #: Crash-triggered worker respawns across all shards.
    respawns: int
    #: Operator-requested shard restarts across all shards.
    restarts: int
    #: Requests accepted by the frontend, per shard.
    submitted: tuple[int, ...]
    #: The inline fallback registry's counters, if it ever engaged.
    fallback: ServingStats | None
    #: Full-graph payloads shipped per shard — at most one per
    #: (workload, worker incarnation) thanks to the interned-graph
    #: handshake.
    graph_ships: tuple[int, ...] = ()
    #: Fingerprint-only requests shipped per shard (graph pickles the
    #: handshake saved).
    fp_sends: tuple[int, ...] = ()
    #: Exceptions absorbed per shard on teardown/respawn/restart paths
    #: (each kept a caller's request alive, but counts as evidence of a
    #: degrading environment — formerly invisible ``pass`` sites).
    swallowed_errors: tuple[int, ...] = ()
    #: Most recent crash-respawn backoff delay per shard (seconds; 0.0
    #: for a shard that never crash-respawned).
    respawn_backoff: tuple[float, ...] = ()
    #: Workers classified hung (silent past the stall budget) and
    #: killed by the watchdog, per shard. Each hang also counts one
    #: respawn (or engages the inline fallback past the limit).
    hangs: tuple[int, ...] = ()
    #: Worker reaps that needed the SIGKILL escalation rung, per shard.
    kill_escalations: tuple[int, ...] = ()
    #: Malformed worker replies (protocol desync), per shard; each
    #: cost the worker its life and the request a respawn + resend.
    corrupt_replies: tuple[int, ...] = ()
    #: Heartbeat beacons consumed per shard — evidence the liveness
    #: channel is actually flowing.
    beacons: tuple[int, ...] = ()
    #: Graceful shutdowns the worker never acked with ``"bye"``,
    #: per shard.
    unacked_shutdowns: tuple[int, ...] = ()

    @cached_property
    def merged(self) -> ServingStats:
        """Every reporting registry folded into one ``ServingStats``.

        Computed once per (immutable) snapshot — the aggregate
        properties below all read it.
        """
        parts = [s for s in self.per_shard if s is not None]
        if self.fallback is not None:
            parts.append(self.fallback)
        if not parts:
            return ServingStats(
                capacity=0,
                tenants=0,
                hits=0,
                misses=0,
                evictions=0,
                searches=0,
                per_tenant={},
                retired=SessionStats.zero(),
            )
        total = parts[0]
        for part in parts[1:]:
            total = total.merge(part)
        return total

    @property
    def tenants(self) -> int:
        return self.merged.tenants

    @property
    def searches(self) -> int:
        return self.merged.searches

    @property
    def hits(self) -> int:
        return self.merged.hits

    @property
    def misses(self) -> int:
        return self.merged.misses

    @property
    def evictions(self) -> int:
        return self.merged.evictions


#: Frontends not yet closed — *strong* references, deliberately: shard
#: workers are non-daemonic (they must be able to parent tenant-level
#: GA pools), and a non-daemonic child that never hears shutdown would
#: make multiprocessing's atexit join hang the interpreter. A frontend
#: therefore stays pinned here until :meth:`ShardedServing.close`
#: (a weak reference would let an abandoned frontend be collected
#: silently, leaving its workers running and the exit hanging). The
#: hook below closes whatever is left at exit; it is registered after
#: the ``multiprocessing`` import above, and atexit is LIFO, so it
#: runs before multiprocessing joins its children.
_LIVE_FRONTENDS: "set[_ShardPool]" = set()


def _close_live_frontends() -> None:  # pragma: no cover - interpreter exit
    for frontend in list(_LIVE_FRONTENDS):
        frontend.close()


atexit.register(_close_live_frontends)


class _ShardPool:
    """Shared machinery of multi-process serving frontends.

    Owns the shard worker handles and everything about talking to
    them: spawning and reaping worker processes, the crash policy
    (bounded cold respawn + resend, then inline fallback), the
    interned-graph handshake that ships each workload's full graph at
    most once per worker incarnation, and the lazily-built inline
    fallback registry. Subclasses add a *dispatch discipline* on top:
    :class:`ShardedServing` runs one FIFO queue per shard;
    :class:`repro.core.frontend.SloServing` runs per-tenant queues with
    admission control and deadline-aware (EDF) scheduling.

    Not a public API — construct one of the subclasses.
    """

    #: Crash-triggered cold respawns per shard before its traffic
    #: degrades to the inline fallback registry.
    SHARD_RESPAWN_LIMIT = 2

    #: First crash-respawn backoff delay (seconds); doubles per respawn
    #: of the same shard, capped below.
    RESPAWN_BACKOFF_BASE = 0.05

    #: Upper bound on any single crash-respawn backoff delay (seconds).
    RESPAWN_BACKOFF_CAP = 2.0

    def __init__(
        self,
        topology: SystemTopology,
        shards: int,
        config: SearchConfig,
        mp_context: str = "spawn",
        liveness: LivenessPolicy | None = None,
        clock=time.monotonic,
    ) -> None:
        require_positive(shards, "shards")
        #: The canonical config every shard worker rebuilds its
        #: registry from.
        self.config = config.canonical()
        self.topology = topology
        self.shards = shards
        #: The liveness policy of this frontend — stall budget, beacon
        #: protocol and kill-escalation graces (see
        #: :class:`repro.core.health.LivenessPolicy`). Disable the
        #: watchdog with ``LivenessPolicy(stall_budget=None)``.
        self.liveness = liveness if liveness is not None else LivenessPolicy()
        # The watchdog's deadline clock. Injectable so hang detection
        # is testable without real multi-second waits; the real poll
        # cadence stays poll_interval regardless.
        self._health_clock = clock
        self._ctx = multiprocessing.get_context(mp_context)
        self._closed = False
        self._fallback: MultiModelSession | None = None
        self._fallback_lock = threading.Lock()
        self._handles = [_ShardHandle(index) for index in range(shards)]
        # Injectable for tests: the crash-respawn backoff's sleep. Only
        # the dispatcher thread of the crashed shard sleeps — other
        # shards keep serving.
        self._sleep = time.sleep

    def _require_open(self) -> None:
        """Raise a clean :class:`RuntimeError` once the frontend is
        closed — routing on a closed frontend is a lifecycle bug in the
        caller, not an invalid argument."""
        if self._closed:
            raise RuntimeError(
                f"{type(self).__name__} is closed; it no longer accepts "
                "requests"
            )

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _spawn_worker(self, handle: _ShardHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        # NOT daemonic: a daemonic worker could never start children of
        # its own, which is exactly what a tenant session configured
        # with ``workers > 1`` does (its level-2 GA process pool).
        # Orphan safety comes from the module atexit hook instead: any
        # frontend still open at interpreter exit is closed (workers
        # ack and exit) before multiprocessing's own child join runs.
        process = self._ctx.Process(
            target=_shard_worker,
            args=(
                child_conn,
                self.topology,
                self.config,
                handle.index,
                # The incarnation coordinate fault plans key on: 0 for
                # the original worker, advancing with every replacement
                # (crash respawn or operator restart), so an injected
                # fault does not re-fire in the respawned worker.
                handle.respawns + handle.restarts,
                self.liveness,
            ),
            name=f"repro-shard-{handle.index}",
        )
        try:
            process.start()
        except BaseException:
            # Failed starts happen under fd/PID pressure — the exact
            # moment leaking the pipe's two descriptors hurts most.
            parent_conn.close()
            child_conn.close()
            raise
        child_conn.close()
        handle.interned.clear()  # a cold worker has interned nothing
        handle.drained = False
        handle.fresh = True  # first reply gets the spawn-grace budget
        handle.process = process
        handle.conn = parent_conn

    def _reap_worker(self, handle: _ShardHandle, graceful: bool = True) -> None:
        """Teardown of a dead or dying worker — guaranteed, not
        best-effort: the stop ladder ends in SIGKILL + join, so a
        SIGTERM-ignoring worker cannot leak past this.

        ``graceful=False`` skips the initial join window — for a worker
        already classified hung, which by definition will not exit on
        its own.
        """
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                handle.swallowed += 1
            handle.conn = None
        if handle.process is not None:
            if stop_process(
                handle.process, self.liveness.term_grace, graceful=graceful
            ):
                # Needed the SIGKILL rung: count it both as an
                # escalation and as absorbed teardown trouble.
                handle.escalations += 1
                handle.swallowed += 1
            handle.process = None
        # Whatever the old worker had interned died with it.
        handle.interned.clear()

    def _shutdown_worker(self, handle: _ShardHandle) -> None:
        """Graceful worker shutdown: ask, wait for the ack, reap.

        The ack wait runs through the same stall budget as a request
        (instead of the old fixed, result-ignored 30 s poll), so
        ``close()`` on a hung fleet is bounded. A worker that never
        acks ``"bye"`` is counted in ``unacked_shutdowns`` and reaped
        without the graceful join window — it already proved it is not
        listening.
        """
        if handle.process is None:
            return
        acked = False
        try:
            handle.conn.send(("shutdown",))
            response = self._await_reply(handle)
            acked = _well_formed(response) and response[0] == "bye"
        except WorkerHung:
            handle.hangs += 1
        except (BrokenPipeError, EOFError, OSError):
            # The worker died before (or while) acking — reaping below
            # still collects it; count the failed graceful path.
            handle.swallowed += 1
        if not acked:
            handle.unacked += 1
        self._reap_worker(handle, graceful=acked)

    def _restart_worker(self, handle: _ShardHandle) -> None:
        """Operator-requested cold restart (doesn't count as a crash)."""
        self._shutdown_worker(handle)
        handle.restarts += 1
        self._spawn_worker(handle)

    def _respawn_backoff(self, handle: _ShardHandle) -> float:
        """The delay before this shard's next crash respawn (seconds).

        Bounded exponential — :attr:`RESPAWN_BACKOFF_BASE` doubling per
        respawn of the shard, capped at :attr:`RESPAWN_BACKOFF_CAP` —
        with deterministic jitter in ``[0.5, 1.0)`` of the nominal
        delay, derived from the (shard, attempt) pair through
        :func:`~repro.utils.rng.stable_seed` so shards that crash
        together don't respawn in lockstep, yet tests can predict every
        delay exactly. A deterministically-crashing worker therefore
        costs a geometrically-slowing spawn/die cycle instead of a hot
        loop, and the inline fallback engages after
        :attr:`SHARD_RESPAWN_LIMIT` respawns as before.
        """
        attempt = handle.respawns
        nominal = min(
            self.RESPAWN_BACKOFF_CAP,
            self.RESPAWN_BACKOFF_BASE * (2.0 ** attempt),
        )
        jitter = 0.5 + (
            stable_seed("respawn-jitter", handle.index, attempt) % 4096
        ) / 8192.0
        delay = nominal * jitter
        handle.last_backoff = delay
        return delay

    # ------------------------------------------------------------------
    # Request round-trip (crash policy + interned-graph handshake)
    # ------------------------------------------------------------------

    def _wire_request(self, handle: _ShardHandle, request: tuple) -> tuple:
        """The message actually sent: fingerprint-only when interned.

        The first ``"search"`` for a workload ships the full graph and
        records its fingerprint against the worker incarnation; later
        requests collapse to ``("search_fp", fp, ...)`` — the graph is
        never pickled twice for one worker. Reaping a worker clears its
        interned set, so a cold replacement is re-shipped the graph.
        """
        if request[0] != "search":
            return request
        _, graph, seed, topology, objective = request
        fp = graph.fingerprint()
        if fp in handle.interned:
            handle.fp_sends += 1
            return ("search_fp", fp, seed, topology, objective)
        handle.interned.add(fp)
        handle.graph_ships += 1
        return request

    def _await_reply(self, handle: _ShardHandle) -> tuple:
        """One watchdog-guarded reply from the shard worker.

        Poll-with-deadline on the injectable health clock instead of a
        blocking ``recv()``: heartbeat beacons are consumed here (each
        extends the deadline and counts on the handle), a fresh
        incarnation's first message gets the spawn-grace budget, and a
        worker silent past the budget raises
        :class:`~repro.core.health.WorkerHung` to the crash policy.
        ``waiting_since`` brackets the wait so tests (and operators)
        can observe an in-flight request.
        """
        policy = self.liveness
        budget = (
            policy.first_reply_budget()
            if handle.fresh
            else policy.stall_budget
        )

        def on_beacon(message: tuple) -> None:
            handle.beacons += 1
            handle.fresh = False

        handle.waiting_since = self._health_clock()
        try:
            response = wait_for_reply(
                handle.conn,
                policy,
                self._health_clock,
                budget,
                on_beacon,
            )
        finally:
            handle.waiting_since = None
        handle.fresh = False
        return response

    def _crash_respawn(self, handle: _ShardHandle) -> None:
        """Replace a reaped worker, applying backoff and the respawn
        limit. Past the limit (or on a failed spawn) the handle stays
        dead, so the caller's next loop serves inline."""
        if handle.respawns < self.SHARD_RESPAWN_LIMIT:
            delay = self._respawn_backoff(handle)
            if delay > 0:
                self._sleep(delay)
            handle.respawns += 1
            try:
                self._spawn_worker(handle)
            except Exception:
                # Respawn itself failed (resource exhaustion): leave
                # the handle dead so the next loop serves this request
                # inline, like any other dead-shard path — the caller
                # still gets its result.
                handle.swallowed += 1

    def _roundtrip(self, handle: _ShardHandle, request: tuple) -> tuple:
        """Send one request to the shard worker; apply the crash policy.

        Three failure classes, one recovery: a **broken pipe** (the
        worker died mid-request), a **hang** (the watchdog saw neither
        reply nor beacon within the stall budget — the worker is
        kill-escalated first), and a **corrupt reply** (protocol
        desync — the worker can no longer be trusted to frame
        messages, so it is killed too). Each reaps the worker and — up
        to :attr:`SHARD_RESPAWN_LIMIT` times — replaces it cold and
        re-sends the request (results are identical, the rebuilt
        registry just starts with cold caches). Beyond the limit the
        shard serves inline through the fallback registry. A worker
        answering ``unknown_fp`` (it raced a respawn) is re-shipped
        the full graph.
        """
        while True:
            if not handle.alive:
                if handle.drained:
                    # Deliberately scaled down, not crashed: bring the
                    # worker back on demand. A failed spawn falls
                    # through to the crash paths below.
                    try:
                        self._spawn_worker(handle)
                    except Exception:
                        handle.drained = False
                        return self._serve_inline(request)
                else:
                    return self._serve_inline(request)
            try:
                handle.conn.send(self._wire_request(handle, request))
                response = self._await_reply(handle)
            except WorkerHung:
                handle.hangs += 1
                self._reap_worker(handle, graceful=False)
                self._crash_respawn(handle)
                continue
            except (BrokenPipeError, EOFError, OSError):
                self._reap_worker(handle)
                self._crash_respawn(handle)
                continue
            if not _well_formed(response):
                handle.corrupt += 1
                self._reap_worker(handle, graceful=False)
                self._crash_respawn(handle)
                continue
            if response[0] == "unknown_fp":
                handle.interned.discard(response[1])
                continue
            return response

    def _serve_inline(self, request: tuple) -> tuple:
        """Serve a request in-process after a shard exhausted respawns.

        The fallback registry is built lazily from the same config the
        workers got, so results stay bit-identical — this is the
        sharded analogue of a retired worker pool converging to the
        serial path.
        """
        if request[0] == "stats":
            # Shard-level stats are gone with the worker; the fallback
            # registry reports separately under ``fallback``.
            return ("stats", None)
        _, graph, seed, topology, objective = request
        try:
            with self._fallback_lock:
                if self._fallback is None:
                    self._fallback = MultiModelSession.from_config(
                        self.topology, self.config
                    )
                result = self._fallback.search(
                    graph, seed=seed, topology=topology, objective=objective
                )
            return ("ok", result)
        except Exception as exc:
            return ("error", exc)

    def _fallback_stats(self) -> ServingStats | None:
        with self._fallback_lock:
            if self._fallback is None:
                return None
            return self._fallback.stats()

    def _close_fallback(self) -> None:
        with self._fallback_lock:
            if self._fallback is not None:
                self._fallback.close()


class ShardedServing(_ShardPool):
    """A sharded, multi-process mapping-service frontend.

    Spawns ``shards`` worker processes, each hosting one
    :class:`MultiModelSession` rebuilt from this frontend's
    :class:`~repro.core.config.SearchConfig`. Requests are placed by
    **fingerprint hash** — a given (workload, topology, objective)
    tenant always lands on the same shard, so its warm caches live in
    exactly one process — and requests for *different* shards run
    concurrently, which is what the single-process registry (which
    serializes every search on one core) cannot do.

    Determinism: sharded routing never changes results. Each worker's
    registry is content-addressed and every search inside it is
    bit-identical to a fresh :class:`~repro.core.mapper.Mars` run with
    the same configuration and seed — across shard counts, and across
    crash-triggered cold respawns (property-tested in
    ``tests/core/test_sharded.py``).

    Crash policy (PR 4's pool policy, one level up): a worker that dies
    mid-request is replaced by a cold respawn and the in-flight request
    is re-sent — at most :attr:`SHARD_RESPAWN_LIMIT` times per shard,
    after which that shard's traffic is served *inline* by a
    frontend-local fallback registry instead of thrashing on a broken
    environment. Either path returns identical results.

    Lifecycle: :meth:`close` (or context-manager exit) drains — every
    request submitted before the close completes, then workers shut
    down cleanly. :meth:`submit` after close raises a clean
    :class:`RuntimeError` (it never touches the stopped dispatchers).

    Args:
        topology: Default system for every tenant.
        shards: Worker process count.
        config: A prebuilt :class:`~repro.core.config.SearchConfig`;
            when given it supersedes the loose keywords below.
        mp_context: :mod:`multiprocessing` start method. Keep the
            default ``"spawn"`` (identical on every platform, safe next
            to the frontend's dispatcher threads) or use
            ``"forkserver"`` on POSIX for faster worker start. Avoid
            ``"fork"``: crash respawns fork from a dispatcher *thread*
            while other threads run, and a child inheriting a lock held
            at fork time can hang the replacement worker.
        designs / budget / options / objective / workers / cache /
            layer_cache / capacity / subproblem_capacity: The same
            loose kwargs :class:`MultiModelSession` takes, bundled into
            a config when ``config`` is not given. ``capacity`` bounds
            live tenants *per shard*.
        liveness: The :class:`~repro.core.health.LivenessPolicy`
            governing the hang watchdog, heartbeat beacons and the
            SIGTERM→SIGKILL escalation ladder (defaults apply one; pass
            ``LivenessPolicy(stall_budget=None)`` for the old blocking
            behaviour).
        clock: The watchdog's deadline clock (monotonic seconds) —
            injectable so hang paths are testable without real waits.
    """

    DEFAULT_SHARDS = 2

    def __init__(
        self,
        topology: SystemTopology,
        shards: int = DEFAULT_SHARDS,
        config: SearchConfig | None = None,
        mp_context: str = "spawn",
        designs: list[AcceleratorDesign] | None = None,
        budget: SearchBudget | None = None,
        options: EvaluatorOptions | None = None,
        objective: str = "latency",
        workers: int | None = None,
        cache: bool | None = None,
        layer_cache: bool | None = None,
        capacity: int = DEFAULT_CAPACITY,
        subproblem_capacity: int = DEFAULT_SUBPROBLEM_CAPACITY,
        cost_model: CostModelSpec | None = None,
        liveness: LivenessPolicy | None = None,
        clock=time.monotonic,
    ) -> None:
        if config is None:
            config = SearchConfig.from_kwargs(
                designs=designs,
                budget=budget,
                options=options,
                cost_model=cost_model,
                objective=objective,
                workers=workers,
                cache=cache,
                layer_cache=layer_cache,
                capacity=capacity,
                subproblem_capacity=subproblem_capacity,
            )
        super().__init__(
            topology, shards, config, mp_context, liveness=liveness, clock=clock
        )
        self._submit_lock = threading.Lock()
        try:
            for handle in self._handles:
                self._spawn_worker(handle)
                handle.thread = threading.Thread(
                    target=self._dispatch_loop,
                    args=(handle,),
                    name=f"shard-{handle.index}-dispatch",
                    daemon=True,
                )
                handle.thread.start()
        except BaseException:
            # A spawn failure partway through must not orphan the
            # non-daemonic workers already started — they would block
            # interpreter exit in multiprocessing's child join.
            self._closed = True
            for handle in self._handles:
                if handle.thread is not None:
                    handle.queue.put(("stop",))
                elif handle.process is not None:
                    self._shutdown_worker(handle)
            for handle in self._handles:
                if handle.thread is not None:
                    handle.thread.join()
            raise
        _LIVE_FRONTENDS.add(self)

    @classmethod
    def from_config(
        cls,
        topology: SystemTopology,
        config: SearchConfig,
        shards: int = DEFAULT_SHARDS,
        mp_context: str = "spawn",
    ) -> "ShardedServing":
        """Build a frontend from a canonical config bundle."""
        return cls(topology, shards=shards, config=config, mp_context=mp_context)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def shard_of(
        self,
        graph: ComputationGraph,
        topology: SystemTopology | None = None,
        objective: str | None = None,
    ) -> int:
        """The shard a tenant is placed on — sticky by construction.

        Derived from the tenant key's content fingerprints through
        :func:`~repro.utils.rng.stable_seed`, so placement is identical
        across frontends, processes and interpreter runs: a tenant's
        warm caches accumulate on exactly one shard.
        """
        topology = topology if topology is not None else self.topology
        objective = (
            objective if objective is not None else self.config.objective
        )
        return stable_seed(
            "shard-placement",
            graph.fingerprint(),
            topology.fingerprint(),
            objective,
        ) % self.shards

    # ------------------------------------------------------------------
    # Serving API
    # ------------------------------------------------------------------

    def submit(
        self,
        graph: ComputationGraph,
        seed: int = 0,
        topology: SystemTopology | None = None,
        objective: str | None = None,
    ) -> "Future[MarsResult]":
        """Queue one search on its tenant's shard; returns a future.

        Requests for different shards run concurrently; requests for
        one shard run in submission order (each shard is one process,
        which is exactly what keeps a tenant's caches warm in one
        place).
        """
        with self._submit_lock:
            self._require_open()
            handle = self._handles[self.shard_of(graph, topology, objective)]
            future: "Future[MarsResult]" = Future()
            handle.queue.put(
                ("request", future, ("search", graph, seed, topology, objective))
            )
            handle.submitted += 1
        return future

    def search(
        self,
        graph: ComputationGraph,
        seed: int = 0,
        topology: SystemTopology | None = None,
        objective: str | None = None,
    ) -> MarsResult:
        """Blocking :meth:`submit` — route one search and wait for it."""
        return self.submit(
            graph, seed=seed, topology=topology, objective=objective
        ).result()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def restart_shard(self, index: int) -> None:
        """Cold-restart one shard worker, in order with its queue.

        The restart is enqueued like a request: every search submitted
        before this call completes first, then the worker is replaced
        by a fresh process (warm caches gone, results unchanged — the
        rebuilt registry is configured bit-identically). Blocks until
        the replacement is up.
        """
        require(0 <= index < self.shards, f"no shard {index}")
        with self._submit_lock:
            self._require_open()
            done = threading.Event()
            self._handles[index].queue.put(("restart", done))
        done.wait()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch_loop(self, handle: _ShardHandle) -> None:
        while True:
            item = handle.queue.get()
            kind = item[0]
            if kind == "stop":
                self._shutdown_worker(handle)
                return
            if kind == "restart":
                try:
                    self._restart_worker(handle)
                except Exception:
                    # A failed respawn leaves the handle dead; its
                    # traffic degrades to the inline fallback. The
                    # dispatcher must survive either way — but the
                    # failure surfaces in ``stats().swallowed_errors``.
                    handle.swallowed += 1
                finally:
                    item[1].set()
                continue
            future, request = item[1], item[2]
            if not future.set_running_or_notify_cancel():
                continue
            try:
                status, payload = self._roundtrip(handle, request)
            except BaseException as exc:  # frontend-side failure
                future.set_exception(exc)
                continue
            if status == "error":
                future.set_exception(payload)
            else:
                future.set_result(payload)

    # ------------------------------------------------------------------
    # Observability and lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> ShardedServingStats:
        """Aggregate registry counters across every shard.

        Queued like requests, so the numbers reflect a consistent
        drain point: every search submitted before this call is counted
        by its shard before the shard reports.
        """
        with self._submit_lock:
            self._require_open()
            futures = []
            for handle in self._handles:
                future: Future = Future()
                handle.queue.put(("request", future, ("stats",)))
                futures.append(future)
        per_shard = tuple(future.result() for future in futures)
        return ShardedServingStats(
            shards=self.shards,
            per_shard=per_shard,
            respawns=sum(h.respawns for h in self._handles),
            restarts=sum(h.restarts for h in self._handles),
            submitted=tuple(h.submitted for h in self._handles),
            fallback=self._fallback_stats(),
            graph_ships=tuple(h.graph_ships for h in self._handles),
            fp_sends=tuple(h.fp_sends for h in self._handles),
            swallowed_errors=tuple(h.swallowed for h in self._handles),
            respawn_backoff=tuple(h.last_backoff for h in self._handles),
            hangs=tuple(h.hangs for h in self._handles),
            kill_escalations=tuple(h.escalations for h in self._handles),
            corrupt_replies=tuple(h.corrupt for h in self._handles),
            beacons=tuple(h.beacons for h in self._handles),
            unacked_shutdowns=tuple(h.unacked for h in self._handles),
        )

    def close(self) -> None:
        """Drain every shard queue, shut workers down, join threads.

        Every request submitted before the close completes (their
        futures resolve normally); submission afterwards raises.
        Idempotent.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            for handle in self._handles:
                handle.queue.put(("stop",))
        for handle in self._handles:
            if handle.thread is not None:
                handle.thread.join()
        self._close_fallback()
        _LIVE_FRONTENDS.discard(self)

    def __enter__(self) -> "ShardedServing":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
