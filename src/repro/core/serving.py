"""Multi-tenant serving: one mapper process, many models.

A :class:`~repro.core.session.MarsSession` keeps one workload's search
state warm. A serving deployment (the Herald / MAGMA multi-DNN setting
in PAPERS.md) answers mapping requests for *many* workloads — several
networks behind one endpoint, A/B'd variants of one network, merged
multi-DNN graphs from :func:`repro.dnn.multi.combine_graphs` — and
rebuilding a session per request would throw the warm caches away
exactly when they pay off.

:class:`MultiModelSession` is the registry that closes that gap: it
routes each request to its tenant's warm session, building sessions
lazily and evicting least-recently-used tenants beyond a configurable
``capacity`` (an evicted tenant's session is closed — its worker pool
shuts down — and a later request simply rebuilds it cold). Tenants are
keyed by workload/topology object *identity* (through strong-referenced
:class:`~repro.utils.identity.IdentityRef` keys, so a recycled ``id``
can never alias two workloads) plus the search objective; the design
catalog, budgets and cost-model options are fixed per registry, exactly
like one session's configuration.

Routing never changes results: every tenant search is bit-identical to
a fresh :class:`~repro.core.mapper.Mars` run with the same
configuration and seed (property-tested in
``tests/core/test_serving.py``).

>>> from repro.core.serving import MultiModelSession
>>> from repro.dnn import build_model
>>> from repro.system import f1_16xlarge
>>> registry = MultiModelSession(f1_16xlarge(), capacity=4)
>>> vgg, squeeze = build_model("vgg16"), build_model("squeezenet")
>>> best = {
...     g.name: registry.search(g, seed=0) for g in (vgg, squeeze)
... }  # doctest: +SKIP
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.accelerators.base import AcceleratorDesign
from repro.core.evaluator import EvaluatorOptions
from repro.core.ga.level1 import SearchBudget
from repro.core.session import MarsResult, MarsSession, SessionStats
from repro.dnn.graph import ComputationGraph
from repro.system.topology import SystemTopology
from repro.utils.identity import IdentityRef
from repro.utils.validation import require, require_positive

__all__ = ["MultiModelSession", "ServingStats"]


@dataclass(frozen=True)
class ServingStats:
    """Registry-level counters of a :class:`MultiModelSession`."""

    #: Maximum number of live tenant sessions.
    capacity: int
    #: Tenant sessions currently alive.
    tenants: int
    #: Requests routed to an already-warm tenant session.
    hits: int
    #: Requests that built a tenant session (first sight or rebuilt
    #: after eviction).
    misses: int
    #: Tenant sessions closed under capacity pressure (explicit
    #: ``evict()`` calls are not counted — this gauges whether
    #: ``capacity`` is undersized).
    evictions: int
    #: Searches routed through the registry so far.
    searches: int
    #: Per-tenant warm-state counters, keyed by tenant label (graph
    #: name, ``:objective``-suffixed for non-default objectives and
    #: ``@n``-suffixed when distinct graph objects share a name).
    per_tenant: dict[str, SessionStats]

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class MultiModelSession:
    """An LRU registry of warm :class:`MarsSession`s, one per tenant.

    The registry fixes everything tenants share — the system topology,
    design catalog, GA budgets, cost-model options and backend knobs —
    and keys tenants on what varies per request: the workload graph
    (by identity), an optional per-request topology override, and the
    objective. :meth:`search` is the serving entry point;
    :meth:`session_for` exposes the underlying session when a caller
    needs the warm evaluator or per-tenant cache control.

    Capacity and eviction: at most ``capacity`` sessions stay alive;
    building one beyond that closes the least-recently-*used* tenant
    (its worker pool shuts down, its warm caches are dropped). Eviction
    is invisible to results — a re-request rebuilds the tenant cold and
    searches bit-identically — it only trades memory for warm-up
    wall-clock.

    Args:
        topology: Default system for every tenant (overridable per
            request).
        designs: Design catalog for adaptive systems (Table II default
            inside each session).
        budget: GA budgets for the two levels.
        options: Cost-model knobs.
        objective: Default objective; per-request override allowed.
        workers: Override both levels' evaluation parallelism. Each
            tenant session owns its pool for its lifetime.
        cache: Override both levels' fitness memoization.
        layer_cache: Override :attr:`EvaluatorOptions.layer_cache`.
        capacity: Maximum number of live tenant sessions.
        subproblem_capacity: Per-tenant LRU bound on the cross-search
            sub-problem cache.
    """

    DEFAULT_CAPACITY = 8

    def __init__(
        self,
        topology: SystemTopology,
        designs: list[AcceleratorDesign] | None = None,
        budget: SearchBudget | None = None,
        options: EvaluatorOptions | None = None,
        objective: str = "latency",
        workers: int | None = None,
        cache: bool | None = None,
        layer_cache: bool | None = None,
        capacity: int = DEFAULT_CAPACITY,
        subproblem_capacity: int = MarsSession.DEFAULT_SUBPROBLEM_CAPACITY,
    ) -> None:
        require_positive(capacity, "capacity")
        self.topology = topology
        self.designs = designs
        self.budget = budget
        self.options = options
        self.objective = objective
        self.workers = workers
        self.cache = cache
        self.layer_cache = layer_cache
        self.capacity = capacity
        self.subproblem_capacity = subproblem_capacity
        self._tenants: OrderedDict[tuple, MarsSession] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._searches = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Tenant routing
    # ------------------------------------------------------------------

    def _key(
        self,
        graph: ComputationGraph,
        topology: SystemTopology,
        objective: str,
    ) -> tuple:
        # IdentityRef pins graph/topology alive while the key is held,
        # so tenant identity can never be aliased by a recycled id.
        return (IdentityRef(graph), IdentityRef(topology), objective)

    def session_for(
        self,
        graph: ComputationGraph,
        topology: SystemTopology | None = None,
        objective: str | None = None,
    ) -> MarsSession:
        """The tenant's warm session, built on first sight.

        Refreshes the tenant's LRU recency; may evict another tenant
        when a new session pushes the registry past ``capacity``.
        """
        require(not self._closed, "serving registry is closed")
        topology = topology if topology is not None else self.topology
        objective = objective if objective is not None else self.objective
        key = self._key(graph, topology, objective)
        session = self._tenants.get(key)
        if session is not None:
            self._hits += 1
            self._tenants.move_to_end(key)
            return session
        self._misses += 1
        session = MarsSession(
            graph,
            topology,
            designs=self.designs,
            budget=self.budget,
            options=self.options,
            objective=objective,
            workers=self.workers,
            cache=self.cache,
            layer_cache=self.layer_cache,
            subproblem_capacity=self.subproblem_capacity,
        )
        self._tenants[key] = session
        while len(self._tenants) > self.capacity:
            _, evicted = self._tenants.popitem(last=False)
            evicted.close()
            self._evictions += 1
        return session

    def search(
        self,
        graph: ComputationGraph,
        seed: int = 0,
        topology: SystemTopology | None = None,
        objective: str | None = None,
    ) -> MarsResult:
        """Route one search to its tenant's warm session.

        Bit-identical to a fresh :class:`~repro.core.mapper.Mars`
        search with the same configuration and seed, whether the tenant
        was warm, cold, or rebuilt after eviction.
        """
        result = self.session_for(graph, topology, objective).search(
            seed=seed
        )
        self._searches += 1
        return result

    def evict(
        self,
        graph: ComputationGraph,
        topology: SystemTopology | None = None,
        objective: str | None = None,
    ) -> bool:
        """Explicitly close and drop one tenant; True if it was alive."""
        topology = topology if topology is not None else self.topology
        objective = objective if objective is not None else self.objective
        session = self._tenants.pop(
            self._key(graph, topology, objective), None
        )
        if session is None:
            return False
        session.close()
        # Deliberate evictions stay out of ``ServingStats.evictions`` —
        # that counter measures capacity *pressure*, the signal for
        # sizing ``capacity``, and caller-initiated drops are not it.
        return True

    def __contains__(self, graph: ComputationGraph) -> bool:
        """Whether ``graph`` has a live tenant under the default
        topology and objective."""
        return (
            self._key(graph, self.topology, self.objective) in self._tenants
        )

    def __len__(self) -> int:
        return len(self._tenants)

    # ------------------------------------------------------------------
    # Observability and lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> ServingStats:
        """Registry counters plus per-tenant session counters."""
        per_tenant: dict[str, SessionStats] = {}
        for (graph_ref, _, objective), session in self._tenants.items():
            base = graph_ref.obj.name
            if objective != self.objective:
                base = f"{base}:{objective}"
            label, suffix = base, 2
            while label in per_tenant:
                label = f"{base}@{suffix}"
                suffix += 1
            per_tenant[label] = session.stats
        return ServingStats(
            capacity=self.capacity,
            tenants=len(self._tenants),
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            searches=self._searches,
            per_tenant=per_tenant,
        )

    def close(self) -> None:
        """Close every tenant session and refuse further routing."""
        if self._closed:
            return
        self._closed = True
        for session in self._tenants.values():
            session.close()
        self._tenants.clear()

    def __enter__(self) -> "MultiModelSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
