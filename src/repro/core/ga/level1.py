"""First-level GA: accelerator sets, designs, workload allocation (Fig. 3).

The level-1 genome decodes into

1. one **partition** of the accelerators from the heuristic candidate
   catalog (edge-removal components, Section V),
2. a **design** per accelerator set (adaptive systems only; gene blocks
   initialized from profiled performance), and
3. **cut points** allocating contiguous layer ranges to the sets.

Each decoded individual spawns second-level sub-problems — memoized in
a ``solution_cache``, since different level-1 individuals frequently
share (layer-range, accelerator-set, design) triples — and its fitness
is the full-mapping latency including inter-set transfers.

Each sub-problem's level-2 GA draws from a private RNG derived from the
sub-problem *key* (:func:`repro.utils.rng.stable_seed`), not from a
stream shared across sub-problems. A sub-problem therefore always walks
the identical search trajectory no matter which search (or which seed)
first posed it, which is what lets the ``solution_cache`` be shared
across searches — a :class:`~repro.core.session.MarsSession` keeps one
alive across its lifetime — without breaking bit-identity with a cold
search.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.accelerators.base import AcceleratorDesign
from repro.accelerators.profiler import WorkloadProfile, profile_designs
from repro.core.evaluator import (
    LayerCacheStats,
    MappingEvaluator,
    MappingEvaluation,
)
from repro.core.formulation import (
    AcceleratorSet,
    LayerRange,
    Mapping,
    SetAssignment,
)
from repro.core.ga.backends import (
    CachedBackend,
    EvaluationBackend,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.core.ga.engine import GAConfig, GAResult, GeneticAlgorithm
from repro.core.ga.heuristics import (
    Partition,
    candidate_partitions,
    design_gene_seed,
)
from repro.core.ga.level2 import SetSolution, optimize_set
from repro.dnn.graph import ComputationGraph
from repro.system.topology import SystemTopology
from repro.utils.cache import LruCache
from repro.utils.rng import make_rng, stable_seed
from repro.utils.validation import require


@dataclass
class SearchBudget:
    """GA budgets for both levels."""

    level1: GAConfig
    level2: GAConfig

    @staticmethod
    def fast() -> "SearchBudget":
        """Small budget for tests and quick exploration."""
        return SearchBudget(
            level1=GAConfig(
                population_size=8,
                generations=6,
                elite_count=1,
                patience=4,
            ),
            level2=GAConfig(
                population_size=10,
                generations=8,
                elite_count=1,
                patience=4,
            ),
        )

    def with_backend(
        self, workers: int | None = None, cache: bool | None = None
    ) -> "SearchBudget":
        """This budget with backend knobs applied to both GA levels."""
        changes: dict = {}
        if workers is not None:
            changes["workers"] = workers
        if cache is not None:
            changes["cache"] = cache
        if not changes:
            return self
        return SearchBudget(
            level1=replace(self.level1, **changes),
            level2=replace(self.level2, **changes),
        )

    @staticmethod
    def paper() -> "SearchBudget":
        """Budget sized for the Table III / IV experiments."""
        return SearchBudget(
            level1=GAConfig(
                population_size=16,
                generations=20,
                elite_count=2,
                patience=8,
            ),
            level2=GAConfig(
                population_size=16,
                generations=14,
                elite_count=2,
                patience=6,
            ),
        )


@dataclass
class DecodedIndividual:
    """A decoded level-1 genome, before level-2 optimization."""

    partition: Partition
    used_sets: list[tuple[int, ...]]
    designs: list[AcceleratorDesign | None]
    ranges: list[LayerRange]


def subproblem_rng(key: tuple) -> np.random.Generator:
    """Private RNG of one level-2 sub-problem, derived from its key.

    Content-keyed (not drawn from a shared stream): the trajectory of a
    sub-problem's GA never depends on which other sub-problems ran
    first, which search posed it, the level-1 seed — or, since the
    batched fan-out, which *worker process* solves it. This is the
    property that makes ``solution_cache`` entries reusable across
    searches, seeds, sessions and pool workers with bit-identical
    results.
    """
    return make_rng(stable_seed("level2-subproblem", *key))


class SubproblemSolver:
    """Picklable level-1 sub-problem job: one level-2 GA per item.

    The batched fan-out ships one solver per generation batch (workers
    memoize the unpickled object by payload bytes, so the evaluator —
    whose ``__getstate__`` drops its caches precisely to keep those
    bytes stable — is rebuilt once per worker incarnation and its
    private layer cache warms across generations). Each item is one
    ``(key, design)`` pair; the nodes come from the shipped graph and
    the RNG from the content-keyed ``key``, so a solution is identical
    no matter which worker (or the parent, on the serial fallback
    path) produces it.

    Results carry the worker-side layer-cache delta of the solve so
    the parent can merge pool counters into its stats; on the
    in-process fallback path the delta is ``None`` — the parent
    evaluator's own counters already saw that work, and shipping a
    delta too would double-count it.
    """

    def __init__(self, evaluator: MappingEvaluator, config: GAConfig) -> None:
        self.evaluator = evaluator
        # Worker-side level-2 GAs run strictly serial: the fan-out owns
        # the pool's parallelism, and a nested executor per worker
        # would fork-bomb the host without changing any result.
        self.config = replace(config, workers=1)
        self._remote = False

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_remote"] = True  # any unpickled copy lives in a worker
        return state

    def __call__(
        self, item: tuple[tuple, AcceleratorDesign | None]
    ) -> tuple[tuple, SetSolution, LayerCacheStats | None]:
        key, design = item
        start, stop = key[0], key[1]
        accs = key[2]
        nodes = self.evaluator.graph.nodes()[start:stop]
        before = self.evaluator.layer_cache_stats
        solution = optimize_set(
            self.evaluator,
            nodes,
            accs,
            design,
            self.config,
            subproblem_rng(key),
        )
        if not self._remote:
            return key, solution, None
        return key, solution, self.evaluator.layer_cache_stats.since(before)


class _Level1Fitness:
    """The level-1 fitness object handed to the GA engine.

    A thin adapter over :class:`Level1Search` whose job is to expose
    the ``prepare_population`` batch hook (bound methods cannot carry
    one): each generation, the engine shows the whole population to the
    evaluation backend, which forwards it here, and the search fans the
    batch's distinct uncached sub-problems out before any per-genome
    fitness call runs. Scoring then walks a fully warm sub-problem
    cache in-process.
    """

    __slots__ = ("search",)

    def __init__(self, search: "Level1Search") -> None:
        self.search = search

    def __call__(self, genome: np.ndarray) -> float:
        return self.search.fitness(genome)

    def prepare_population(
        self, genomes: list[np.ndarray] | tuple[np.ndarray, ...]
    ) -> None:
        self.search.prefetch_population(genomes)


@dataclass
class Level1Search:
    """Drives the two-level search for one workload on one system.

    ``objective`` selects what the outer GA minimizes:

    * ``"latency"`` — single-input end-to-end latency (the paper's
      objective);
    * ``"throughput"`` — the steady-state pipeline initiation interval
      when streaming many inputs (extension; favours balanced multi-set
      pipelines over one big set).

    ``solution_cache``, ``partitions`` and ``design_profile`` may be
    supplied by a long-lived owner (see
    :class:`~repro.core.session.MarsSession`) to warm-start repeated
    searches; all three hold seed-independent state, so sharing them
    never changes results — only wall-clock. ``level2_backend``
    likewise lets an owner hand down one process pool for the level-2
    sub-GAs instead of this search spawning (and tearing down) its own;
    ``run()`` only closes a pool it built itself.

    ``level1_backend`` is the **batched sub-problem fan-out** pool:
    when present (an owner hands one down, or ``budget.level1.workers
    > 1`` builds one here), every generation's population is decoded up
    front, the distinct *uncached* ``(layer_range, acc_set, design)``
    sub-problems across all individuals are deduplicated, and that
    batch is solved in parallel — one level-2 GA per pool task. Each
    sub-problem carries its own content-keyed RNG
    (:func:`subproblem_rng`), so solutions are position- and
    worker-independent and merge back into the shared
    ``solution_cache`` without forking state; genome scoring then runs
    over a fully warm cache in-process, keeping the phenotype memo and
    layer-LRU semantics intact. Results are bit-identical to the serial
    path for a fixed seed — the fan-out, like every backend, only
    changes wall-clock.

    ``progress`` is a pure observation callback ``(phase, count)``
    invoked after each level-1 generation and once per *distinct*
    level-2 sub-problem solved (exact under the batch fan-out too: a
    prefetch and a fitness call landing on the same key tick once).
    It must not consume search RNG; the serving liveness layer plugs
    heartbeat beacons into it
    (:class:`~repro.core.health.BeaconEmitter`), which is why it exists
    as a field rather than ad-hoc instrumentation.
    """

    graph: ComputationGraph
    topology: SystemTopology
    designs: list[AcceleratorDesign]
    evaluator: MappingEvaluator
    budget: SearchBudget
    rng: np.random.Generator
    objective: str = "latency"
    # Any mapping with dict-shaped get/setitem works here; sessions pass
    # a bounded ``repro.utils.cache.LruCache``.
    solution_cache: dict[tuple, SetSolution] | LruCache = field(
        default_factory=dict
    )
    backend: EvaluationBackend | None = None
    level2_backend: EvaluationBackend | None = None
    level1_backend: EvaluationBackend | None = None
    partitions: list[Partition] | None = None
    design_profile: WorkloadProfile | None = None
    progress: Callable[[str, int], None] | None = None

    def __post_init__(self) -> None:
        require(
            self.topology.kind == "fixed" or bool(self.designs),
            "adaptive systems need a non-empty design catalog",
        )
        require(
            self.objective in ("latency", "throughput"),
            f"objective must be 'latency' or 'throughput', got {self.objective!r}",
        )
        self._owns_backend = self.backend is None
        if self.backend is None:
            # Level 1 has always memoized fitness at the phenotype level
            # (the genome→mapping decode is massively many-to-one). The
            # base stays serial even under ``workers > 1``: level-1
            # fitness is stateful — it fills the sub-problem solution
            # cache — so shipping *fitness* to pool workers would fork
            # that state. Parallelism comes from the batched sub-problem
            # fan-out instead (``level1_backend`` below): sub-problem
            # solves are stateless given their content-keyed RNGs, so
            # they fan out and merge back without forking anything.
            self.backend = CachedBackend(
                SerialBackend(), key_fn=self.phenotype_key
            )
        # The level-2 pool may be owned by a long-lived caller (a
        # MarsSession hands one down so repeated searches stop
        # respawning executors); only a pool built here is closed by
        # ``run()``.
        self._owns_level2_pool = (
            self.level2_backend is None and self.budget.level2.workers > 1
        )
        if self._owns_level2_pool:
            self.level2_backend = ProcessPoolBackend(
                self.budget.level2.workers
            )
        self._level2_pool = self.level2_backend
        # The level-1 fan-out pool: handed down by a session, or built
        # here when ``budget.level1.workers`` asks for parallelism (the
        # knob used to be silently ignored at this level).
        self._owns_level1_pool = (
            self.level1_backend is None and self.budget.level1.workers > 1
        )
        if self._owns_level1_pool:
            self.level1_backend = ProcessPoolBackend(
                self.budget.level1.workers
            )
        self._level1_pool = self.level1_backend
        if self.partitions is None:
            self.partitions = candidate_partitions(self.topology, self.backend)
        self.max_sets = max(len(p) for p in self.partitions)
        self._compute_positions = [
            i
            for i, node in enumerate(self.graph.nodes())
            if node.is_compute
        ]
        self._subproblems_solved = 0
        # Keys already ticked through ``_subproblems_solved`` /
        # ``progress``: exactly one tick per *distinct* sub-problem this
        # search solved, no matter whether the prefetch or a fitness
        # call got there first — or whether an LRU eviction forced a
        # re-solve of a key already counted.
        self._solved_keys: set[tuple] = set()
        #: Pool workers' private layer-cache counters, shipped back with
        #: fanned-out sub-problem results and merged here (hits/misses/
        #: evictions sum; ``entries`` is the largest single-worker cache
        #: population observed — worker gauges are not additive).
        self.worker_layer_cache = LayerCacheStats()
        #: Distinct sub-problems this search solved *on pool workers*
        #: (serial-fallback and in-fitness solves are not counted here).
        self.subproblems_fanned_out = 0

    # ------------------------------------------------------------------
    # Genome layout
    # ------------------------------------------------------------------

    @property
    def genome_length(self) -> int:
        partition_genes = len(self.partitions)
        design_genes = (
            self.max_sets * len(self.designs)
            if self.topology.kind == "adaptive"
            else 0
        )
        cut_genes = max(self.max_sets - 1, 0)
        return partition_genes + design_genes + cut_genes

    def _split_genome(
        self, genome: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        p = len(self.partitions)
        d = (
            self.max_sets * len(self.designs)
            if self.topology.kind == "adaptive"
            else 0
        )
        return genome[:p], genome[p : p + d], genome[p + d :]

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------

    def decode(self, genome: np.ndarray) -> DecodedIndividual:
        partition_genes, design_genes, cut_genes = self._split_genome(genome)
        partition = self.partitions[int(np.argmax(partition_genes))]
        sets = list(partition)
        num_sets = len(sets)

        designs: list[AcceleratorDesign | None]
        if self.topology.kind == "adaptive":
            designs = []
            n_designs = len(self.designs)
            for slot in range(num_sets):
                block = design_genes[
                    slot * n_designs : (slot + 1) * n_designs
                ]
                designs.append(self.designs[int(np.argmax(block))])
        else:
            designs = [None] * num_sets

        ranges = self._cut_ranges(cut_genes, num_sets)
        used_sets, used_designs, used_ranges = [], [], []
        for acc_set, design, rng in zip(sets, designs, ranges):
            if rng is not None:
                used_sets.append(acc_set)
                used_designs.append(design)
                used_ranges.append(rng)
        return DecodedIndividual(
            partition=partition,
            used_sets=used_sets,
            designs=used_designs,
            ranges=used_ranges,
        )

    def _cut_ranges(
        self, cut_genes: np.ndarray, num_sets: int
    ) -> list[LayerRange | None]:
        """Allocate contiguous node ranges to ``num_sets`` sets.

        Cut genes are fractions over the compute layers; a cut before
        compute layer ``k`` places the boundary at that layer's node
        index, so prologue layers (input/BN/activations) travel with
        their convolution.
        """
        total_nodes = len(self.graph)
        positions = self._compute_positions
        if num_sets == 1:
            return [LayerRange(0, total_nodes)]
        fractions = np.sort(cut_genes[: num_sets - 1])
        cut_nodes = []
        for fraction in fractions:
            k = int(round(fraction * len(positions)))
            k = min(max(k, 0), len(positions) - 1)
            cut_nodes.append(positions[k] if k > 0 else 0)
        boundaries = [0, *cut_nodes, total_nodes]
        ranges: list[LayerRange | None] = []
        for start, stop in zip(boundaries[:-1], boundaries[1:]):
            ranges.append(LayerRange(start, stop) if stop > start else None)
        return ranges

    # ------------------------------------------------------------------
    # Fitness
    # ------------------------------------------------------------------

    @staticmethod
    def _subproblem_key(
        layer_range: LayerRange,
        accs: tuple[int, ...],
        design: AcceleratorDesign | None,
    ) -> tuple:
        return (
            layer_range.start,
            layer_range.stop,
            accs,
            design.name if design else "<fixed>",
        )

    def _record_solved(self, key: tuple) -> None:
        """Tick the solved-sub-problem beacon, once per distinct key.

        Both the batch prefetch and an in-fitness solve route here, and
        the key set makes the count exact: a prefetch and a fitness
        call landing on the same key (an LRU eviction between them, or
        a serial-fallback overlap) produce one tick, not two.
        """
        if key in self._solved_keys:
            return
        self._solved_keys.add(key)
        self._subproblems_solved += 1
        if self.progress is not None:
            self.progress("level2-subproblem", self._subproblems_solved)

    def solve_subproblem(
        self,
        layer_range: LayerRange,
        accs: tuple[int, ...],
        design: AcceleratorDesign | None,
    ) -> SetSolution:
        key = self._subproblem_key(layer_range, accs, design)
        cached = self.solution_cache.get(key)
        if cached is not None:
            return cached
        nodes = [self.graph.nodes()[i] for i in layer_range.indices()]
        solution = optimize_set(
            self.evaluator,
            nodes,
            accs,
            design,
            self.budget.level2,
            subproblem_rng(key),
            backend=self._level2_pool,
        )
        self.solution_cache[key] = solution
        self._record_solved(key)
        return solution

    def prefetch_population(
        self, genomes: list[np.ndarray] | tuple[np.ndarray, ...]
    ) -> None:
        """Batched sub-problem fan-out for one generation's population.

        Decodes the whole batch, dedupes the distinct uncached
        ``(layer_range, acc_set, design)`` sub-problems across all
        individuals, and solves that batch in parallel on the fan-out
        pool; solutions merge into the shared ``solution_cache``, so
        the per-genome fitness calls that follow walk a fully warm
        cache. Purely a wall-clock lever: each sub-problem's solution
        comes from its content-keyed RNG, so results never depend on
        this running (the serial path would solve the same sub-problems
        one by one). No-op without a fan-out pool.
        """
        pool = self._level1_pool
        if pool is None or not genomes:
            return
        jobs: dict[tuple, tuple[LayerRange, AcceleratorDesign | None]] = {}
        for genome in genomes:
            decoded = self.decode(np.asarray(genome))
            for acc_set, design, layer_range in zip(
                decoded.used_sets, decoded.designs, decoded.ranges
            ):
                key = self._subproblem_key(layer_range, acc_set, design)
                if key in jobs or key in self.solution_cache:
                    continue
                jobs[key] = (layer_range, design)
        if not jobs:
            return
        solver = SubproblemSolver(self.evaluator, self.budget.level2)
        items = [(key, design) for key, (_, design) in jobs.items()]
        for key, solution, stats in pool.map_subproblems(solver, items):
            self.solution_cache[key] = solution
            self._record_solved(key)
            if stats is not None:
                self.subproblems_fanned_out += 1
                merged = self.worker_layer_cache
                self.worker_layer_cache = LayerCacheStats(
                    hits=merged.hits + stats.hits,
                    misses=merged.misses + stats.misses,
                    entries=max(merged.entries, stats.entries),
                    evictions=merged.evictions + stats.evictions,
                )

    @staticmethod
    def _subproblem_rng(key: tuple) -> np.random.Generator:
        """See :func:`subproblem_rng` (kept as a method for callers)."""
        return subproblem_rng(key)

    def build_mapping(self, decoded: DecodedIndividual) -> Mapping:
        assignments = []
        for acc_set, design, layer_range in zip(
            decoded.used_sets, decoded.designs, decoded.ranges
        ):
            solution = self.solve_subproblem(layer_range, acc_set, design)
            assignments.append(
                SetAssignment(
                    layer_range=layer_range,
                    acc_set=AcceleratorSet(acc_set),
                    design=design,
                    strategies=solution.strategies,
                )
            )
        return Mapping(
            graph=self.graph, topology=self.topology, assignments=assignments
        )

    def fitness(self, genome: np.ndarray) -> float:
        """Latency (or pipeline interval) of one level-1 genome.

        Memoization lives in the evaluation backend (phenotype-keyed by
        default), not here — direct callers always get a fresh price.
        """
        decoded = self.decode(genome)
        mapping = self.build_mapping(decoded)
        evaluation = self.evaluator.evaluate_mapping(mapping)
        if self.objective == "throughput":
            return evaluation.pipeline_interval_seconds
        return evaluation.latency_seconds

    def phenotype_key(self, genome: np.ndarray) -> tuple:
        """Hashable decoded-mapping key for cache-backed evaluation."""
        return self._decode_key(self.decode(genome))

    def _decode_key(self, decoded: DecodedIndividual) -> tuple:
        return (
            tuple(decoded.used_sets),
            tuple(d.name if d else "<fixed>" for d in decoded.designs),
            tuple((r.start, r.stop) for r in decoded.ranges),
        )

    # ------------------------------------------------------------------
    # Seeds
    # ------------------------------------------------------------------

    def seed_genomes(self) -> list[np.ndarray]:
        """Heuristic level-1 individuals.

        One seed per partition candidate, with design genes initialized
        from the profiled normalized performance (Section V) and evenly
        spread cuts. The workload profile is computed once and kept on
        ``design_profile`` so warm sessions skip re-profiling.
        """
        seeds = []
        design_seed: list[float] = []
        if self.topology.kind == "adaptive":
            if self.design_profile is None:
                self.design_profile = profile_designs(
                    self.graph, self.designs, self.backend
                )
            design_seed = design_gene_seed(
                self.design_profile, [d.name for d in self.designs]
            )
        for index, partition in enumerate(self.partitions):
            genome = np.zeros(self.genome_length)
            partition_genes, design_genes, cut_genes = self._split_genome(genome)
            partition_genes[index] = 1.0
            if self.topology.kind == "adaptive":
                for slot in range(self.max_sets):
                    block = slice(
                        slot * len(self.designs),
                        (slot + 1) * len(self.designs),
                    )
                    design_genes[block] = design_seed
            count = len(partition)
            if count > 1:
                cut_genes[: count - 1] = np.linspace(
                    1.0 / count, (count - 1.0) / count, count - 1
                )
            seeds.append(genome)
        return seeds

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(self) -> tuple[Mapping, MappingEvaluation, GAResult]:
        layer_cache_before = self.evaluator.layer_cache_stats
        try:
            ga = GeneticAlgorithm(
                genome_length=self.genome_length,
                fitness=_Level1Fitness(self),
                config=self.budget.level1,
                rng=self.rng,
                seeds=self.seed_genomes(),
                backend=self.backend,
                on_generation=(
                    None
                    if self.progress is None
                    else lambda g: self.progress("level1-generation", g)
                ),
            )
            result = ga.run()
            decoded = self.decode(result.best_genome)
            mapping = self.build_mapping(decoded)
            evaluation = self.evaluator.evaluate_mapping(mapping)
            if self.evaluator.layer_cache_enabled:
                # Whole-search in-process delta. With serial budgets
                # this covers the level-2 sub-GAs too (they price
                # through this evaluator). Fanned-out sub-problem
                # solves ship their workers' private cache counters
                # back with the pool results; that aggregate lands on
                # ``worker_layer_cache`` so the two views partition the
                # run instead of silently losing the workers' share.
                # (Level-2 *population* batches shipped by a level-2
                # pool still price on worker evaluators without
                # reporting — their protocol returns bare floats.)
                result.layer_cache = self.evaluator.layer_cache_stats.since(
                    layer_cache_before
                )
                if self.subproblems_fanned_out:
                    result.worker_layer_cache = self.worker_layer_cache
            return mapping, evaluation, result
        finally:
            if self._owns_level2_pool and self._level2_pool is not None:
                self._level2_pool.close()
            if self._owns_level1_pool and self._level1_pool is not None:
                self._level1_pool.close()
            if self._owns_backend:
                self.backend.close()
