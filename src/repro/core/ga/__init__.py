"""Two-level genetic algorithm (Fig. 3 of the paper)."""

from repro.core.ga.engine import GAConfig, GAResult, GeneticAlgorithm
from repro.core.ga.heuristics import (
    candidate_partitions,
    design_gene_seed,
    edge_removal_partitions,
)
from repro.core.ga.level1 import Level1Search, SearchBudget
from repro.core.ga.level2 import (
    GENES_PER_LAYER,
    SetSolution,
    decode_layer_strategy,
    optimize_set,
)

__all__ = [
    "GAConfig",
    "GAResult",
    "GENES_PER_LAYER",
    "GeneticAlgorithm",
    "Level1Search",
    "SearchBudget",
    "SetSolution",
    "candidate_partitions",
    "decode_layer_strategy",
    "design_gene_seed",
    "edge_removal_partitions",
    "optimize_set",
]
