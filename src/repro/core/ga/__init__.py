"""Two-level genetic algorithm (Fig. 3 of the paper)."""

from repro.core.ga.backends import (
    BACKEND_CHOICES,
    BackendStats,
    CachedBackend,
    EvaluationBackend,
    ProcessPoolBackend,
    SerialBackend,
    backend_from_spec,
    genome_key,
    make_backend,
)
from repro.core.ga.engine import GAConfig, GAResult, GeneticAlgorithm
from repro.core.ga.heuristics import (
    candidate_partitions,
    design_gene_seed,
    edge_removal_partitions,
)
from repro.core.ga.level1 import (
    Level1Search,
    SearchBudget,
    SubproblemSolver,
    subproblem_rng,
)
from repro.core.ga.level2 import (
    GENES_PER_LAYER,
    Level2Fitness,
    SetSolution,
    decode_layer_strategy,
    greedy_strategies,
    optimize_set,
)

__all__ = [
    "BACKEND_CHOICES",
    "BackendStats",
    "CachedBackend",
    "EvaluationBackend",
    "GAConfig",
    "GAResult",
    "GENES_PER_LAYER",
    "GeneticAlgorithm",
    "Level1Search",
    "Level2Fitness",
    "ProcessPoolBackend",
    "SearchBudget",
    "SerialBackend",
    "SetSolution",
    "SubproblemSolver",
    "subproblem_rng",
    "backend_from_spec",
    "candidate_partitions",
    "decode_layer_strategy",
    "design_gene_seed",
    "edge_removal_partitions",
    "genome_key",
    "greedy_strategies",
    "make_backend",
    "optimize_set",
]
