"""Second-level GA: per-layer parallelism strategies (Fig. 3, green/blue).

Given one sub-problem — a layer set mapped to an accelerator set with a
fixed design — this level searches each layer's (ES, SS) annotation.
Following Section V, each layer owns genes that *prioritize* dimensions:
the decode picks the top-priority dims for ES and (optionally) SS,
falling back to coarser strategies when a choice is infeasible for the
layer's shape.

Genome layout per compute layer (14 genes):

====================  ======================================
``[0]``               ES dim count selector (0, 1 or 2 dims)
``[1:7]``             ES priority per canonical loop dim
``[7]``               SS enable
``[8:14]``            SS priority per canonical loop dim
====================  ======================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerators.base import AcceleratorDesign
from repro.core.evaluator import MappingEvaluator, SetEvaluation
from repro.core.ga.backends import (
    CachedBackend,
    EvaluationBackend,
    SerialBackend,
)
from repro.core.ga.engine import GAConfig, GAResult, GeneticAlgorithm
from repro.core.sharding import (
    NO_PARALLELISM,
    ParallelismStrategy,
    cached_sharding_plan,
)
from repro.core.strategy_space import longest_dims_strategy
from repro.dnn.graph import LayerNode
from repro.dnn.layers import LOOP_DIMS, LoopDim
from repro.utils.cache import LruCache

GENES_PER_LAYER = 14


@dataclass
class SetSolution:
    """Best strategies found for one (LayerSet, AccSet, design)."""

    strategies: dict[str, ParallelismStrategy]
    latency_seconds: float
    evaluation: SetEvaluation
    ga: GAResult | None = None


def decode_layer_strategy(
    genes: np.ndarray,
    node: LayerNode,
    parallelism: int,
    dtype_bytes: int = 2,
) -> ParallelismStrategy:
    """Decode one layer's 14 genes into a feasible strategy.

    Dim priorities order the candidates; the ES count is lowered until a
    feasible plan exists (every layer admits the replicated fallback).
    """
    if parallelism == 1:
        return NO_PARALLELISM
    spec = node.conv_spec()
    extents = spec.loop_extents()
    # Pure-python stable sorts: ``sorted`` over six floats beats
    # ``np.argsort`` on arrays this small, and this runs per layer per
    # decoded genome. Ordering is identical (descending value, ties by
    # canonical dim index).
    g = genes.tolist()
    es_count = min(int(g[0] * 3), 2)
    es_pri, ss_pri = g[1:7], g[8:14]
    es_order = [
        LOOP_DIMS[i]
        for i in sorted(range(6), key=lambda i: -es_pri[i])
        if extents[LOOP_DIMS[i]] >= 2
    ]
    ss_enabled = g[7] > 0.5
    ss_order = [
        LOOP_DIMS[i]
        for i in sorted(range(6), key=lambda i: -ss_pri[i])
        if extents[LOOP_DIMS[i]] >= parallelism
    ]

    for count in range(es_count, -1, -1):
        es = tuple(sorted(es_order[:count], key=LOOP_DIMS.index))
        ss = None
        if ss_enabled:
            ss = next((d for d in ss_order if d not in es), None)
        strategy = ParallelismStrategy(es=es, ss=ss)
        if cached_sharding_plan(spec, strategy, parallelism, dtype_bytes) is not None:
            return strategy
        # Retry without SS before dropping an ES dim.
        if ss is not None:
            strategy = ParallelismStrategy(es=es, ss=None)
            if cached_sharding_plan(spec, strategy, parallelism, dtype_bytes) is not None:
                return strategy
    return NO_PARALLELISM


#: Strategy motifs priced by the greedy seed: the Table III patterns
#: (spatial early / channel late) plus SS variants for the scenarios
#: where shared shards pay off (weight streaming, tight DRAM).
SHORTLIST: tuple[ParallelismStrategy, ...] = (
    ParallelismStrategy(es=(LoopDim.H, LoopDim.W)),
    ParallelismStrategy(es=(LoopDim.H,)),
    ParallelismStrategy(es=(LoopDim.W,)),
    ParallelismStrategy(es=(LoopDim.COUT,)),
    ParallelismStrategy(es=(LoopDim.COUT, LoopDim.CIN)),
    ParallelismStrategy(es=(LoopDim.COUT, LoopDim.H)),
    ParallelismStrategy(es=(LoopDim.CIN, LoopDim.W)),
    ParallelismStrategy(es=(LoopDim.CIN, LoopDim.H)),
    ParallelismStrategy(es=(LoopDim.H,), ss=LoopDim.COUT),
    ParallelismStrategy(es=(LoopDim.W,), ss=LoopDim.COUT),
    ParallelismStrategy(es=(LoopDim.COUT,), ss=LoopDim.H),
    ParallelismStrategy(es=(LoopDim.COUT, LoopDim.H), ss=LoopDim.CIN),
)


class GreedyLayerScorer:
    """Picklable per-layer argmin over the strategy shortlist.

    Module-level (rather than a closure) so a
    :class:`~repro.core.ga.backends.ProcessPoolBackend` can ship it to
    workers and score layers concurrently.
    """

    def __init__(
        self,
        evaluator: MappingEvaluator,
        accs: tuple[int, ...],
        design: AcceleratorDesign | None,
    ) -> None:
        self.evaluator = evaluator
        self.accs = accs
        self.design = design

    def __call__(self, node: LayerNode) -> ParallelismStrategy:
        best: tuple[float, int] | None = None
        best_strategy = NO_PARALLELISM
        for index, strategy in enumerate(SHORTLIST):
            evaluation = self.evaluator.evaluate_set(
                [node], self.accs, self.design, {node.name: strategy}
            )
            if not evaluation.feasible:
                continue
            key = (evaluation.latency_seconds, index)
            if best is None or key < best:
                best = key
                best_strategy = strategy
        return best_strategy


def greedy_strategies(
    evaluator: MappingEvaluator,
    compute_nodes: list[LayerNode],
    accs: tuple[int, ...],
    design: AcceleratorDesign | None,
    backend: EvaluationBackend | None = None,
) -> dict[str, ParallelismStrategy]:
    """Per-layer argmin over the strategy shortlist, priced standalone.

    Ignores inter-layer resharding (the GA refines that), but includes
    compute, collectives, rotations and — in the streaming scenario —
    weight loads, so it lands close to the per-layer optimum. With a
    parallel ``backend``, layers are scored concurrently.

    Choices are memoized on the evaluator per (layer, acc set, design):
    the argmin is deterministic, so overlapping sub-problems within one
    search — and every search of a warm session — skip re-pricing the
    shortlist for layers already seen.
    """
    chosen: dict[str, ParallelismStrategy] = {}
    missing: list[LayerNode] = []
    for node in compute_nodes:
        cached = evaluator.cached_greedy_strategy(node.name, accs, design)
        if cached is None:
            missing.append(node)
        else:
            chosen[node.name] = cached
    if missing:
        scorer = GreedyLayerScorer(evaluator, accs, design)
        for node, strategy in zip(
            missing, (backend or SerialBackend()).map(scorer, missing)
        ):
            evaluator.store_greedy_strategy(node.name, accs, design, strategy)
            chosen[node.name] = strategy
    return chosen


def _seed_genomes(
    nodes: list[LayerNode],
    parallelism: int,
    evaluator: MappingEvaluator | None = None,
    accs: tuple[int, ...] | None = None,
    design: AcceleratorDesign | None = None,
    backend: EvaluationBackend | None = None,
) -> list[np.ndarray]:
    """Heuristic first-generation individuals.

    Seeds encode: the per-layer greedy shortlist choice, the baseline
    longest-two-dims rule, pure spatial H/W partitioning, and channel
    partitioning — the mapping motifs of Table III.
    """
    compute = [n for n in nodes if n.is_compute]

    def genome_for(choose) -> np.ndarray:
        genome = np.zeros(len(compute) * GENES_PER_LAYER)
        for i, node in enumerate(compute):
            strategy = choose(node)
            base = i * GENES_PER_LAYER
            genome[base] = min(len(strategy.es) / 2.0 + 0.17, 0.99)
            for rank, dim in enumerate(strategy.canonical_es()):
                genome[base + 1 + LOOP_DIMS.index(dim)] = 1.0 - 0.1 * rank
            genome[base + 7] = 0.0 if strategy.ss is None else 1.0
            if strategy.ss is not None:
                genome[base + 8 + LOOP_DIMS.index(strategy.ss)] = 1.0
        return genome

    seeds = [
        genome_for(lambda n: longest_dims_strategy(n.conv_spec(), 2)),
        genome_for(
            lambda n: ParallelismStrategy(es=(LoopDim.H, LoopDim.W))
        ),
        genome_for(lambda n: longest_dims_strategy(n.conv_spec(), 1)),
        genome_for(
            lambda n: ParallelismStrategy(es=(LoopDim.COUT, LoopDim.CIN))
        ),
    ]
    if evaluator is not None and accs is not None:
        greedy = greedy_strategies(evaluator, compute, accs, design, backend)
        seeds.insert(0, genome_for(lambda n: greedy[n.name]))
    return seeds


class Level2Fitness:
    """Picklable fitness of one level-2 sub-problem.

    Decodes a genome into per-layer strategies and prices the whole set
    through the shared evaluator. Being a module-level class (not a
    closure) it pickles cleanly, so the same object drives the serial,
    cached and process-pool backends.

    Each genome is decoded **once**: a small per-instance memo (keyed by
    the genome's raw bytes) is shared by ``phenotype_key`` and
    ``__call__``, which a :class:`~repro.core.ga.backends.CachedBackend`
    otherwise calls back to back — historically doubling the
    ``make_sharding_plan`` work per evaluation.

    ``phenotype_key`` composes from per-layer sub-keys (one decoded
    strategy per compute layer, slot-aligned with ``compute_nodes``).
    The whole tuple is the :class:`CachedBackend` key — an exact
    phenotype repeat skips evaluation entirely — while near-duplicates
    that differ in a layer or two fall through to ``__call__``, where
    the evaluator's layer-cost cache reuses every sub-key that did not
    change. Warm restarts therefore hit at layer granularity instead of
    all-or-nothing.
    """

    #: Bound on the decode memo; comfortably above any population size
    #: so one batch's ``phenotype_key`` pass stays resident for the
    #: ``__call__`` pass that follows.
    DECODE_MEMO_CAPACITY = 1024

    #: Bound on the per-layer rank→strategy memo. Keys are tiny (a few
    #: ints) and repeat heavily under GA mutation — most children keep
    #: most layers' priority *orderings* even when gene values move.
    RANK_MEMO_CAPACITY = 8192

    def __init__(
        self,
        evaluator: MappingEvaluator,
        nodes: list[LayerNode],
        accs: tuple[int, ...],
        design: AcceleratorDesign | None,
    ) -> None:
        self.evaluator = evaluator
        self.nodes = nodes
        self.compute_nodes = [n for n in nodes if n.is_compute]
        self.accs = accs
        self.design = design
        self.dtype_bytes = evaluator.options.dtype_bytes
        self._decode_memo = LruCache(self.DECODE_MEMO_CAPACITY)
        self._rank_memo: dict[tuple, ParallelismStrategy] = {}
        self._layer_dims: list[tuple] | None = None  # built on first batch

    def __getstate__(self) -> dict:
        # The memos stay home when the fitness ships to pool workers:
        # per-batch-changing state would change the pickled payload
        # bytes every generation and defeat the workers' payload memo.
        state = dict(self.__dict__)
        state["_decode_memo"] = None
        state["_rank_memo"] = {}
        state["_layer_dims"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._decode_memo = LruCache(self.DECODE_MEMO_CAPACITY)

    @property
    def genome_length(self) -> int:
        return len(self.compute_nodes) * GENES_PER_LAYER

    @property
    def decode_hits(self) -> int:
        """Decodes skipped thanks to the per-genome memo."""
        return self._decode_memo.hits

    @property
    def decode_misses(self) -> int:
        """Actual genome decodes performed."""
        return self._decode_memo.misses

    def _decoded(self, genome: np.ndarray) -> dict[str, ParallelismStrategy]:
        raw = np.ascontiguousarray(genome).tobytes()
        strategies = self._decode_memo.get(raw)
        if strategies is None:
            strategies = self._decode(genome)
            self._decode_memo.put(raw, strategies)
        return strategies

    def _decode(self, genome: np.ndarray) -> dict[str, ParallelismStrategy]:
        parallelism = len(self.accs)
        strategies = {}
        for i, node in enumerate(self.compute_nodes):
            genes = genome[i * GENES_PER_LAYER : (i + 1) * GENES_PER_LAYER]
            strategies[node.name] = decode_layer_strategy(
                genes, node, parallelism, self.dtype_bytes
            )
        return strategies

    def decode(self, genome: np.ndarray) -> dict[str, ParallelismStrategy]:
        """Per-layer strategies of ``genome`` (memoized; returns a copy)."""
        return dict(self._decoded(genome))

    # -- vectorized population decode ----------------------------------

    def prepare_population(
        self, genomes: list[np.ndarray] | tuple[np.ndarray, ...]
    ) -> None:
        """Batch-decode a whole population into the decode memo.

        Called by in-process backends before per-genome evaluation (see
        :meth:`EvaluationBackend.prepare`): all strategy genes are
        decoded in one vectorized NumPy pass — the gene→count
        truncation, both priority argsorts and the SS gate run on a
        ``(population, layers, genes)`` tensor instead of per genome —
        and the per-layer feasibility fallback goes through a small
        rank-keyed memo. Bit-identical to the scalar
        :func:`decode_layer_strategy` path (property-tested); the
        subsequent ``phenotype_key``/``__call__`` calls are memo hits.
        """
        fresh_raws: list[bytes] = []
        fresh_rows: list[np.ndarray] = []
        seen: set[bytes] = set()
        for genome in genomes:
            row = np.ascontiguousarray(np.asarray(genome, dtype=float))
            raw = row.tobytes()
            if raw in seen:
                continue
            seen.add(raw)
            if self._decode_memo.get(raw) is not None:
                continue
            fresh_raws.append(raw)
            fresh_rows.append(row)
        if not fresh_rows:
            return
        for raw, strategies in zip(
            fresh_raws, self._decode_batch(np.stack(fresh_rows))
        ):
            self._decode_memo.put(raw, strategies)

    def _decode_batch(
        self, population: np.ndarray
    ) -> list[dict[str, ParallelismStrategy]]:
        """Decode a ``(genomes, genome_length)`` matrix in one pass."""
        layers = len(self.compute_nodes)
        genes = population.reshape(len(population), layers, GENES_PER_LAYER)
        # The vectorized stages mirror decode_layer_strategy exactly:
        # float truncation toward zero, stable descending argsort (ties
        # by canonical dim index), 0.5 threshold. One ``tolist`` per
        # array hands the whole batch to the Python assembly loop as
        # plain ints — per-element numpy scalar access would dominate.
        es_counts = np.minimum((genes[:, :, 0] * 3).astype(np.int64), 2).tolist()
        es_ranks = np.argsort(-genes[:, :, 1:7], axis=2, kind="stable").tolist()
        ss_enabled = (genes[:, :, 7] > 0.5).tolist()
        ss_ranks = np.argsort(-genes[:, :, 8:14], axis=2, kind="stable").tolist()

        parallelism = len(self.accs)
        names = [node.name for node in self.compute_nodes]
        memo = self._rank_memo
        decoded = []
        for g_counts, g_es, g_ss_on, g_ss in zip(
            es_counts, es_ranks, ss_enabled, ss_ranks
        ):
            strategies = {}
            for i, name in enumerate(names):
                key = (i, g_counts[i], tuple(g_es[i]), g_ss_on[i], tuple(g_ss[i]))
                strategy = memo.get(key)
                if strategy is None:
                    strategy = self._resolve_ranks(key, parallelism)
                strategies[name] = strategy
            decoded.append(strategies)
        return decoded

    def _layer_dim_info(self, index: int) -> tuple:
        """(spec, ES-eligible dim indices, SS-eligible dim indices)."""
        if self._layer_dims is None:
            parallelism = len(self.accs)
            dims = []
            for node in self.compute_nodes:
                spec = node.conv_spec()
                extents = spec.loop_extents()
                dims.append(
                    (
                        spec,
                        frozenset(
                            i
                            for i, dim in enumerate(LOOP_DIMS)
                            if extents[dim] >= 2
                        ),
                        frozenset(
                            i
                            for i, dim in enumerate(LOOP_DIMS)
                            if extents[dim] >= parallelism
                        ),
                    )
                )
            self._layer_dims = dims
        return self._layer_dims[index]

    def _resolve_ranks(
        self, key: tuple, parallelism: int
    ) -> ParallelismStrategy:
        """Feasibility fallback from precomputed priority orders.

        Identical to the tail of :func:`decode_layer_strategy`; memoized
        on the ``(layer, count, ES ranks, SS gate, SS ranks)`` key
        because mutation mostly perturbs gene *values* without changing
        the priority *order*, so evolved populations repeat keys
        heavily.
        """
        layer_index, es_count, es_ranks, ss_enabled, ss_ranks = key
        if parallelism == 1:
            return NO_PARALLELISM
        spec, es_eligible, ss_eligible = self._layer_dim_info(layer_index)
        es_order = [LOOP_DIMS[i] for i in es_ranks if i in es_eligible]
        ss_order = [LOOP_DIMS[i] for i in ss_ranks if i in ss_eligible]
        strategy = NO_PARALLELISM
        for count in range(es_count, -1, -1):
            es = tuple(sorted(es_order[:count], key=LOOP_DIMS.index))
            ss = None
            if ss_enabled:
                ss = next((d for d in ss_order if d not in es), None)
            candidate = ParallelismStrategy(es=es, ss=ss)
            if (
                cached_sharding_plan(
                    spec, candidate, parallelism, self.dtype_bytes
                )
                is not None
            ):
                strategy = candidate
                break
            if ss is not None:
                candidate = ParallelismStrategy(es=es, ss=None)
                if (
                    cached_sharding_plan(
                        spec, candidate, parallelism, self.dtype_bytes
                    )
                    is not None
                ):
                    strategy = candidate
                    break
        if len(self._rank_memo) >= self.RANK_MEMO_CAPACITY:
            self._rank_memo.clear()  # flat dict beats LRU bookkeeping here
        self._rank_memo[key] = strategy
        return strategy

    def phenotype_key(self, genome: np.ndarray) -> tuple:
        """Tuple of per-layer strategy sub-keys, one per compute layer."""
        strategies = self._decoded(genome)
        return tuple(strategies[n.name] for n in self.compute_nodes)

    def __call__(self, genome: np.ndarray) -> float:
        return self.evaluator.evaluate_set(
            self.nodes, self.accs, self.design, self._decoded(genome)
        ).latency_seconds


def optimize_set(
    evaluator: MappingEvaluator,
    nodes: list[LayerNode],
    accs: tuple[int, ...],
    design: AcceleratorDesign | None,
    config: GAConfig,
    rng: np.random.Generator,
    backend: EvaluationBackend | None = None,
) -> SetSolution:
    """Run the second-level GA on one sub-problem.

    ``backend`` overrides the evaluation backend; by default the engine
    builds one from ``config.workers``/``config.cache``, memoizing on
    the decoded phenotype when caching is enabled. An explicit backend
    may be shared across sub-problems (e.g. one process pool for the
    whole level-1 search); when ``config.cache`` is set it is wrapped in
    a *fresh* per-sub-problem memoizer, since phenotype keys are only
    unique within one sub-problem.
    """
    compute_nodes = [n for n in nodes if n.is_compute]
    parallelism = len(accs)

    if not compute_nodes or parallelism == 1:
        strategies = {n.name: NO_PARALLELISM for n in compute_nodes}
        evaluation = evaluator.evaluate_set(nodes, accs, design, strategies)
        return SetSolution(strategies, evaluation.latency_seconds, evaluation)

    fitness = Level2Fitness(evaluator, nodes, accs, design)
    engine_backend = backend
    if (
        backend is not None
        and config.cache
        and not isinstance(backend, CachedBackend)
    ):
        engine_backend = CachedBackend(backend, key_fn=fitness.phenotype_key)
    layer_cache_before = evaluator.layer_cache_stats
    ga = GeneticAlgorithm(
        genome_length=fitness.genome_length,
        fitness=fitness,
        config=config,
        rng=rng,
        seeds=_seed_genomes(nodes, parallelism, evaluator, accs, design, backend),
        backend=engine_backend,
        key_fn=fitness.phenotype_key,
    )
    result = ga.run()
    best_strategies = fitness.decode(result.best_genome)
    evaluation = evaluator.evaluate_set(nodes, accs, design, best_strategies)
    if evaluator.layer_cache_enabled:
        result.layer_cache = evaluator.layer_cache_stats.since(
            layer_cache_before
        )
    return SetSolution(
        strategies=best_strategies,
        latency_seconds=evaluation.latency_seconds,
        evaluation=evaluation,
        ga=result,
    )
