"""Population-evaluation backends for the GA engine.

The two-level GA spends nearly all of its wall-clock inside fitness
evaluation: every generation prices a full population through the
:class:`~repro.core.evaluator.MappingEvaluator`. The engine therefore
evaluates *populations*, not individuals, and delegates the batch to an
:class:`EvaluationBackend`:

* :class:`SerialBackend` — evaluate genomes one by one in-process (the
  engine's historical behaviour, and the default);
* :class:`CachedBackend` — memoize fitness by genome (or, with a
  ``key_fn``, by decoded *phenotype*) so elites and converged duplicates
  are never re-priced; exposes hit/miss counters;
* :class:`ProcessPoolBackend` — fan batches out over a process pool
  with deterministic result ordering, falling back to serial evaluation
  when ``workers == 1`` or the fitness callable cannot be pickled.

All backends return results in input order and never touch the GA's
RNG, so for a fixed seed every backend produces bit-identical
``GAResult``s — they only change how fast the answer arrives.
"""

from __future__ import annotations

import pickle
from abc import ABC, abstractmethod
from collections.abc import Callable, Hashable, Sequence
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.utils.cache import LruCache
from repro.utils.validation import require, require_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.ga.engine import GAConfig

#: A scalar fitness function over genomes in [0, 1]^n.
Fitness = Callable[[np.ndarray], float]

#: Maps a genome to a hashable memoization key.
KeyFn = Callable[[np.ndarray], Hashable]

#: Sentinel distinguishing "absent" from a cached falsy value.
_MISSING = object()


def genome_key(genome: np.ndarray) -> bytes:
    """Default memoization key: the genome's raw bytes."""
    return np.ascontiguousarray(genome).tobytes()


@dataclass(frozen=True)
class BackendStats:
    """Cumulative counters of one backend instance.

    ``evaluations`` counts *actual* fitness-function invocations, i.e.
    unique evaluations under caching; ``cache_hits``/``cache_misses``
    stay zero for uncached backends. ``cache_evictions`` counts entries
    dropped by a bounded memoizer (zero when unbounded).
    ``pool_spawns``/``pool_failures`` count worker-pool executors
    created and pooled batches the pool *broke* mid-flight (each re-ran
    serially); work that merely cannot be pickled also runs serially
    but is not a pool failure and is not counted. Both stay zero for
    in-process backends.
    """

    evaluations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    pool_spawns: int = 0
    pool_failures: int = 0

    def since(self, earlier: "BackendStats") -> "BackendStats":
        """Counter deltas relative to an earlier snapshot."""
        return BackendStats(
            evaluations=self.evaluations - earlier.evaluations,
            cache_hits=self.cache_hits - earlier.cache_hits,
            cache_misses=self.cache_misses - earlier.cache_misses,
            cache_evictions=self.cache_evictions - earlier.cache_evictions,
            pool_spawns=self.pool_spawns - earlier.pool_spawns,
            pool_failures=self.pool_failures - earlier.pool_failures,
        )


class EvaluationBackend(ABC):
    """Evaluates whole GA populations (and generic batches of work)."""

    @abstractmethod
    def evaluate(
        self, fitness: Fitness, genomes: Sequence[np.ndarray]
    ) -> list[float]:
        """Fitness of every genome, in input order."""

    def prepare(
        self, fitness: Fitness, genomes: Sequence[np.ndarray]
    ) -> None:
        """Show ``fitness`` the whole batch before ``evaluate``.

        Fitness objects may expose ``prepare_population(genomes)`` to
        hoist per-genome work into one vectorized pass over the batch
        (e.g. the level-2 NumPy genome decode). The hook is purely a
        wall-clock lever: it pre-fills memos that the per-genome calls
        would fill anyway, so results never depend on it running.
        In-process backends invoke it; the process-pool backend skips
        it when the batch will fan out (workers decode locally, so a
        parent-side pass would be wasted work).
        """
        hook = getattr(fitness, "prepare_population", None)
        if hook is not None:
            hook(genomes)

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to every item, in input order.

        A generic escape hatch for evaluation-shaped loops outside the
        GA proper (greedy seeding, baseline mappers, profiling).
        """
        return [fn(item) for item in items]

    def map_subproblems(
        self, solver: Callable[[Any], Any], items: Sequence[Any]
    ) -> list[Any]:
        """Solve heavyweight independent sub-problems, in input order.

        Like :meth:`map`, but tuned for *few, coarse* work items — the
        level-1 fan-out hands a generation's distinct uncached
        sub-problems here, each a whole level-2 GA. The process-pool
        backend dispatches one item per task (instead of splitting the
        batch into per-worker chunks) so a straggler sub-problem never
        holds a chunk's worth of finished work hostage, and it engages
        the pool from two items up. In-process backends just loop.
        """
        return self.map(solver, items)

    @property
    @abstractmethod
    def stats(self) -> BackendStats:
        """Cumulative counters for this backend instance."""

    def close(self) -> None:
        """Release any resources (worker processes)."""

    def __enter__(self) -> "EvaluationBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialBackend(EvaluationBackend):
    """One-by-one in-process evaluation — the engine's classic loop."""

    def __init__(self) -> None:
        self._evaluations = 0

    def evaluate(
        self, fitness: Fitness, genomes: Sequence[np.ndarray]
    ) -> list[float]:
        self._evaluations += len(genomes)
        return [float(fitness(g)) for g in genomes]

    @property
    def stats(self) -> BackendStats:
        return BackendStats(evaluations=self._evaluations)


class CachedBackend(EvaluationBackend):
    """Memoizing wrapper around another backend.

    Keys default to the raw genome bytes; pass ``key_fn`` to memoize at
    the *phenotype* level instead (e.g. the decoded mapping of a level-1
    genome, or the per-layer strategy sub-key tuple of a level-2 one),
    which collapses the many-to-one genome→phenotype decode and is where
    the big hit rates come from. The wrapped backend only ever sees
    cache misses, deduplicated within each batch. Phenotypes that miss
    here at the whole-key level still reuse their unchanged per-layer
    sub-keys inside the evaluator's layer-cost cache.

    Entries are namespaced per fitness callable (by identity, with the
    callable pinned so its id cannot be recycled), so one cache can be
    shared across many GAs/sub-problems without key collisions between
    different fitness functions. Pass ``max_entries`` to bound each
    namespace with LRU eviction (long-running services); the default
    keeps the historical unbounded behaviour.
    """

    def __init__(
        self,
        inner: EvaluationBackend | None = None,
        key_fn: KeyFn | None = None,
        max_entries: int | None = None,
    ) -> None:
        if max_entries is not None:
            require_positive(max_entries, "max_entries")
        self.inner = inner if inner is not None else SerialBackend()
        self.key_fn = key_fn if key_fn is not None else genome_key
        self.max_entries = max_entries
        self._caches: dict[int, dict[Hashable, float] | LruCache] = {}
        self._pinned: dict[int, Fitness] = {}
        self._hits = 0
        self._misses = 0

    def _cache_for(self, fitness: Fitness) -> dict[Hashable, float] | LruCache:
        namespace = id(fitness)
        if namespace not in self._pinned:
            self._pinned[namespace] = fitness  # keeps the id unique
            self._caches[namespace] = (
                LruCache(self.max_entries)
                if self.max_entries is not None
                else {}
            )
        return self._caches[namespace]

    def evaluate(
        self, fitness: Fitness, genomes: Sequence[np.ndarray]
    ) -> list[float]:
        cache = self._cache_for(fitness)
        keys = [self.key_fn(g) for g in genomes]
        # Batch values are collected locally so a bounded cache evicting
        # mid-batch can never lose a value this batch still needs.
        batch: dict[Hashable, float] = {}
        pending_keys: list[Hashable] = []
        pending_genomes: list[np.ndarray] = []
        for key, genome in zip(keys, genomes):
            if key in batch:
                continue
            value = cache.get(key, _MISSING)
            if value is not _MISSING:
                batch[key] = value
                continue
            batch[key] = _MISSING  # claimed; evaluated below
            pending_keys.append(key)
            pending_genomes.append(genome)
        if pending_genomes:
            values = self.inner.evaluate(fitness, pending_genomes)
            cache.update(zip(pending_keys, values))
            batch.update(zip(pending_keys, values))
        self._misses += len(pending_genomes)
        self._hits += len(genomes) - len(pending_genomes)
        return [batch[key] for key in keys]

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        return self.inner.map(fn, items)

    def map_subproblems(
        self, solver: Callable[[Any], Any], items: Sequence[Any]
    ) -> list[Any]:
        return self.inner.map_subproblems(solver, items)

    def __getstate__(self) -> None:
        # A fitness closing over its cache must not ship stale clones to
        # pool workers (their hits/misses would silently diverge); the
        # pool backend falls back to serial evaluation instead.
        raise TypeError("CachedBackend cannot be pickled")

    @property
    def cache_size(self) -> int:
        return sum(len(cache) for cache in self._caches.values())

    def clear(self) -> None:
        self._caches.clear()
        self._pinned.clear()

    @property
    def stats(self) -> BackendStats:
        evictions = sum(
            cache.evictions
            for cache in self._caches.values()
            if isinstance(cache, LruCache)
        )
        return replace(
            self.inner.stats,
            cache_hits=self._hits,
            cache_misses=self._misses,
            cache_evictions=evictions,
        )

    def close(self) -> None:
        self.inner.close()


# ----------------------------------------------------------------------
# Process-pool backend
# ----------------------------------------------------------------------

#: Worker-side memo of unpickled callables, keyed by payload bytes, so
#: repeat batches (every GA generation) skip the unpickle.
_WORKER_PAYLOADS: dict[bytes, Callable[..., Any]] = {}
_WORKER_PAYLOAD_LIMIT = 8


def _run_chunk(payload: bytes, chunk_blob: bytes) -> list[Any]:
    target = _WORKER_PAYLOADS.get(payload)
    if target is None:
        if len(_WORKER_PAYLOADS) >= _WORKER_PAYLOAD_LIMIT:
            _WORKER_PAYLOADS.clear()
        target = pickle.loads(payload)
        _WORKER_PAYLOADS[payload] = target
    return [target(item) for item in pickle.loads(chunk_blob)]


class ProcessPoolBackend(EvaluationBackend):
    """Evaluate batches on a pool of worker processes.

    One executor serves across batches: each batch ships its callable
    once (workers memoize the unpickled object), so the same pool can
    serve many sub-problems — and, when owned by a
    :class:`~repro.core.session.MarsSession`, many *searches* — without
    respawning. Results come back in input order, making a parallel run
    bit-identical to a serial one. When the callable cannot be pickled
    (closures, bound methods of stateful objects), or the pool breaks
    mid-batch, evaluation silently degrades to the serial path —
    correctness never depends on the pool.

    Failure policy: a broken batch retires the *executor*, not the
    backend. The next pooled batch spawns a fresh executor, so one
    transient ``BrokenProcessPool`` (an OOM-killed worker, a fork
    hiccup) costs exactly one serial batch. Only ``failure_limit``
    *consecutive* failures retire the backend for good — a genuinely
    hostile environment stops burning a respawn per batch — and any
    successful pooled batch resets the streak. ``pool_failures`` /
    ``pool_spawns`` count both in :attr:`stats`.
    """

    def __init__(
        self,
        workers: int,
        chunksize: int | None = None,
        failure_limit: int = 3,
    ) -> None:
        require_positive(workers, "workers")
        if chunksize is not None:
            require_positive(chunksize, "chunksize")
        require_positive(failure_limit, "failure_limit")
        self.workers = workers
        self.chunksize = chunksize
        self.failure_limit = failure_limit
        self._evaluations = 0
        self._executor = None
        self._spawns = 0
        self._failures = 0
        self._consecutive_failures = 0

    # -- pool plumbing -------------------------------------------------

    @property
    def retired(self) -> bool:
        """True once ``failure_limit`` consecutive batches broke the
        pool; evaluation stays serial for the backend's lifetime."""
        return self._consecutive_failures >= self.failure_limit

    @property
    def pool_spawns(self) -> int:
        """Executors created so far (1 for an unbroken lifetime)."""
        return self._spawns

    @property
    def pool_failures(self) -> int:
        """Pooled batches the pool broke mid-flight (re-run serially).

        Unpicklable callables/items also degrade to serial but are not
        counted — the pool itself is healthy, the work just cannot
        travel.
        """
        return self._failures

    def _record_failure(self) -> None:
        self._failures += 1
        self._consecutive_failures += 1

    def _payload_for(self, target: Callable[..., Any]) -> bytes | None:
        # No unpicklability memo: ids get recycled, and a failed pickle
        # attempt is cheap (backends themselves refuse via __getstate__
        # before any heavy state is serialized). An unpicklable callable
        # is not a pool *failure* — the pool is fine, the work just
        # cannot travel — so it never counts toward retirement.
        if self.retired:
            return None
        try:
            return pickle.dumps(target)
        except Exception:
            return None

    def _ensure_pool(self) -> bool:
        if self._executor is not None:
            return True
        from concurrent.futures import ProcessPoolExecutor

        try:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        except OSError:
            self._record_failure()
            return False
        self._spawns += 1
        return True

    def _shutdown_pool(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def _map(
        self,
        target: Callable[[Any], Any],
        items: Sequence[Any],
        min_items: int | None = None,
        chunksize: int | None = None,
    ) -> list[Any]:
        # Tiny batches are not worth the dispatch overhead. ``min_items``
        # lowers the bar for coarse work (one sub-problem per task can
        # pay off with fewer items than workers); the default keeps the
        # historical population-batch threshold.
        if min_items is None:
            min_items = max(2, self.workers)
        if self.workers == 1 or len(items) < min_items:
            return [target(item) for item in items]
        payload = self._payload_for(target)
        if payload is None or not self._ensure_pool():
            return [target(item) for item in items]
        chunksize = chunksize or self.chunksize or max(
            1, -(-len(items) // (self.workers * 2))
        )
        chunks = [
            list(items[i : i + chunksize])
            for i in range(0, len(items), chunksize)
        ]
        try:
            # Chunks are pre-pickled here rather than handed to the
            # executor's feeder thread: an item that fails to pickle
            # mid-batch inside the feeder strands the pending work items
            # and deadlocks ``shutdown`` (CPython's process-pool feeder
            # never unregisters them). Serializing in the caller turns
            # that into an ordinary exception — and, like an unpicklable
            # callable, it is not a *pool* failure, so it falls back to
            # serial without burning an executor.
            blobs = [pickle.dumps(chunk) for chunk in chunks]
        except Exception:
            return [target(item) for item in items]
        try:
            futures = [
                self._executor.submit(_run_chunk, payload, blob)
                for blob in blobs
            ]
            results: list[Any] = []
            for future in futures:  # submission order == input order
                results.extend(future.result())
        except Exception:
            # BrokenProcessPool, pickling of items, worker crashes — the
            # batch reruns serially and this executor is retired; the
            # next pooled batch respawns unless the failure streak has
            # hit ``failure_limit``.
            self._record_failure()
            self._shutdown_pool()
            return [target(item) for item in items]
        self._consecutive_failures = 0
        return results

    def __getstate__(self) -> None:
        # Backends must never ride along when a fitness closing over one
        # is shipped to a worker; refusing to pickle forces the safe
        # serial fallback instead of silently cloning pool state.
        raise TypeError("ProcessPoolBackend cannot be pickled")

    # -- EvaluationBackend ---------------------------------------------

    def prepare(
        self, fitness: Fitness, genomes: Sequence[np.ndarray]
    ) -> None:
        """Batch-prepare only when the batch will stay in-process.

        When the batch is big enough to fan out, workers decode their
        chunks locally (the fitness's memos never pickle), so a
        parent-side vectorized pass would be pure overhead. If pickling
        later fails and the batch degrades to the serial path, genomes
        are simply decoded one by one — results are identical either
        way.
        """
        if (
            self.workers > 1
            and not self.retired
            and len(genomes) >= max(2, self.workers)
        ):
            return
        super().prepare(fitness, genomes)

    def evaluate(
        self, fitness: Fitness, genomes: Sequence[np.ndarray]
    ) -> list[float]:
        self._evaluations += len(genomes)
        return [float(v) for v in self._map(fitness, genomes)]

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        return self._map(fn, items)

    def map_subproblems(
        self, solver: Callable[[Any], Any], items: Sequence[Any]
    ) -> list[Any]:
        """One task per sub-problem: coarse items load-balance across
        workers instead of riding per-worker chunks, and the pool
        engages from two items up. Failure policy is :meth:`map`'s —
        a broken batch re-runs serially (bit-identically) and retires
        the executor, not the backend."""
        return self._map(solver, items, min_items=2, chunksize=1)

    @property
    def using_pool(self) -> bool:
        """Whether a live worker pool is currently attached."""
        return self._executor is not None and not self.retired

    @property
    def stats(self) -> BackendStats:
        return BackendStats(
            evaluations=self._evaluations,
            pool_spawns=self._spawns,
            pool_failures=self._failures,
        )

    def close(self) -> None:
        self._shutdown_pool()

    def __del__(self) -> None:
        # GC safety net for callers that drop a backend (or a session
        # holding one) without closing it: release the workers without
        # blocking. Explicit close() remains the contract — this only
        # keeps abandoned pools from accumulating processes until
        # interpreter exit.
        try:
            executor = self._executor
        except AttributeError:  # partially-constructed instance
            return
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------

#: CLI-facing backend names.
BACKEND_CHOICES = ("serial", "cached", "process")


def make_backend(
    config: "GAConfig", key_fn: KeyFn | None = None
) -> EvaluationBackend:
    """Backend implied by a :class:`GAConfig`'s ``workers``/``cache``."""
    base: EvaluationBackend = (
        SerialBackend()
        if config.workers == 1
        else ProcessPoolBackend(config.workers)
    )
    if config.cache:
        return CachedBackend(base, key_fn=key_fn)
    return base


def backend_from_spec(
    spec: str, workers: int = 1, key_fn: KeyFn | None = None
) -> EvaluationBackend:
    """Build a backend from a CLI-style name.

    ``serial`` | ``cached`` | ``process`` — ``cached`` wraps the serial
    or process base (depending on ``workers``) in a memoizer.
    """
    require(
        spec in BACKEND_CHOICES,
        f"unknown backend {spec!r}, expected one of {BACKEND_CHOICES}",
    )
    require_positive(workers, "workers")
    if spec == "serial":
        return SerialBackend()
    if spec == "process":
        return ProcessPoolBackend(max(workers, 2))
    base: EvaluationBackend = (
        SerialBackend() if workers == 1 else ProcessPoolBackend(workers)
    )
    return CachedBackend(base, key_fn=key_fn)
