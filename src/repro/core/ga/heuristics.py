"""Search-space pruning heuristics of Section V.

Three heuristics make the two-level GA tractable:

1. **Edge-removal AccSet candidates** — iteratively delete the
   lowest-bandwidth edges of G(Acc, BW); the connected components at
   each stage become candidate partitions of the accelerators into
   sets, biased towards sets with no internal bandwidth bottleneck.
2. **Profiled design initialization** — design genes start at the
   designs' normalized profiled performance on the workload, so strong
   designs dominate the first generation.
3. **Contiguous layer allocation** — each accelerator set receives a
   contiguous run of layers in topological order (encoded directly in
   the level-1 genome decode, see :mod:`repro.core.ga.level1`).
"""

from __future__ import annotations

from itertools import product

import networkx as nx

from repro.accelerators.profiler import WorkloadProfile
from repro.core.ga.backends import EvaluationBackend, SerialBackend
from repro.system.topology import SystemTopology

#: A partition: disjoint accelerator tuples covering all accelerators.
Partition = tuple[tuple[int, ...], ...]


def _components(graph: "nx.Graph") -> Partition:
    comps = [tuple(sorted(c)) for c in nx.connected_components(graph)]
    return tuple(sorted(comps, key=lambda c: c[0]))


def edge_removal_partitions(
    topology: SystemTopology,
    include_cross_group_edges: bool = True,
) -> list[Partition]:
    """Candidate AccSet partitions via iterative lowest-edge removal.

    The graph starts with every communicating pair (host-staged pairs
    included at their effective bandwidth, mirroring the paper's
    G(Acc, BW)); at each stage all edges tied at the current minimum
    bandwidth are removed and the connected components are recorded.
    The first stage therefore yields the whole-system set, then the
    intra-group sets, down to singletons.
    """
    graph = topology.nx_graph()
    if include_cross_group_edges:
        n = topology.num_accelerators
        for a in range(n):
            for b in range(a + 1, n):
                if not graph.has_edge(a, b):
                    graph.add_edge(
                        a, b, bandwidth=topology.effective_bandwidth(a, b)
                    )

    partitions: list[Partition] = []

    def record(partition: Partition) -> None:
        if partition not in partitions:
            partitions.append(partition)

    record(_components(graph))
    while graph.number_of_edges() > 0:
        lowest = min(data["bandwidth"] for _, _, data in graph.edges(data=True))
        doomed = [
            (a, b)
            for a, b, data in graph.edges(data=True)
            if data["bandwidth"] <= lowest
        ]
        graph.remove_edges_from(doomed)
        record(_components(graph))
    return partitions


def _group_subdivisions(members: list[int]) -> list[tuple[tuple[int, ...], ...]]:
    """Ways to subdivide one group: whole, halves, and pairs/singletons."""
    options: list[tuple[tuple[int, ...], ...]] = [(tuple(members),)]
    n = len(members)
    if n >= 2:
        mid = n // 2
        halves = (tuple(members[:mid]), tuple(members[mid:]))
        if halves not in options:
            options.append(halves)
    if n >= 4:
        pairs = tuple(
            tuple(members[i : min(i + 2, n)]) for i in range(0, n, 2)
        )
        if pairs not in options:
            options.append(pairs)
    return options


def subdivision_partitions(
    topology: SystemTopology,
    backend: EvaluationBackend | None = None,
) -> list[Partition]:
    """Mid-granularity candidates beyond the edge-removal walk.

    Uniform intra-group bandwidth makes the edge-removal walk jump from
    whole groups straight to singletons; the paper's found mappings use
    intermediate shapes (e.g. VGG16 on 4 + 2 + 2 accelerators). These
    candidates combine per-group subdivisions (whole / halves / pairs)
    across groups — asymmetric combinations included. The per-group
    enumeration goes through ``backend.map`` so large topologies can
    share the search's worker pool.
    """
    per_group = (backend or SerialBackend()).map(
        _group_subdivisions,
        [list(members) for members in topology.groups().values()],
    )
    # Set-based dedup: the product over per-group subdivisions grows
    # combinatorially on many-group topologies, where the old list
    # membership scan made catalog construction quadratic.
    partitions: list[Partition] = []
    seen: set[Partition] = set()
    for combo in product(*per_group):
        flattened: list[tuple[int, ...]] = []
        for sets in combo:
            flattened.extend(sets)
        partition = tuple(sorted(flattened, key=lambda c: c[0]))
        if partition not in seen:
            seen.add(partition)
            partitions.append(partition)
    return partitions


def candidate_partitions(
    topology: SystemTopology,
    backend: EvaluationBackend | None = None,
) -> list[Partition]:
    """The level-1 GA's partition catalog (deduplicated, deterministic)."""
    result = edge_removal_partitions(topology)
    seen = set(result)
    for partition in subdivision_partitions(topology, backend):
        if partition not in seen:
            seen.add(partition)
            result.append(partition)
    return result


def design_gene_seed(
    profile: WorkloadProfile, design_names: list[str]
) -> list[float]:
    """Initial design-gene values from normalized profiled performance.

    Section V: "The gene value of these designs at the first generation
    is initialized according to the normalized performance."
    """
    scores = profile.normalized_scores()
    return [scores[name] for name in design_names]
