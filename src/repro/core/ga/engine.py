"""Generic real-valued genetic algorithm (minimization).

Both GA levels of MARS (Fig. 3) share this engine: genomes are vectors
in [0, 1]^n, decoded by the level-specific code. The engine provides
tournament selection, uniform crossover, Gaussian mutation, elitism and
stagnation-based early stopping — all driven by an explicit RNG so runs
are reproducible.

Fitness is evaluated **per population**, not per individual: each
generation's genomes go to an :class:`~repro.core.ga.backends.EvaluationBackend`
(serial, memoized or process-parallel — see :mod:`repro.core.ga.backends`)
or to a user-supplied ``batch_fitness`` callable. Backends return values
in input order and never consume engine RNG, so the search trajectory is
bit-identical across backends for a fixed seed.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.ga.backends import (
    BackendStats,
    EvaluationBackend,
    KeyFn,
    make_backend,
)
from repro.utils.validation import require, require_positive

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids coupling
    from repro.core.evaluator import LayerCacheStats

#: Evaluates a whole population; returns fitnesses in input order.
BatchFitness = Callable[[list[np.ndarray]], list[float]]


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of one GA level.

    ``workers`` and ``cache`` select the default evaluation backend:
    ``workers > 1`` fans population evaluation out over a process pool;
    ``cache=True`` memoizes fitness so duplicate genomes (elites,
    converged populations) are priced once. Defaults reproduce the
    historical serial engine exactly.
    """

    population_size: int = 24
    generations: int = 30
    crossover_rate: float = 0.9
    mutation_rate: float = 0.15
    mutation_sigma: float = 0.25
    tournament_size: int = 3
    elite_count: int = 2
    patience: int = 10  # stop after this many stagnant generations
    workers: int = 1
    cache: bool = False

    def __post_init__(self) -> None:
        require_positive(self.population_size, "population_size")
        require_positive(self.generations, "generations")
        require(
            0.0 <= self.crossover_rate <= 1.0,
            f"crossover_rate must be in [0, 1], got {self.crossover_rate}",
        )
        require(
            0.0 <= self.mutation_rate <= 1.0,
            f"mutation_rate must be in [0, 1], got {self.mutation_rate}",
        )
        require_positive(self.mutation_sigma, "mutation_sigma")
        require(
            1 <= self.tournament_size <= self.population_size,
            "tournament_size must be in [1, population_size]",
        )
        require(
            0 <= self.elite_count < self.population_size,
            "elite_count must be in [0, population_size)",
        )
        require_positive(self.patience, "patience")
        require(
            isinstance(self.workers, int) and not isinstance(self.workers, bool),
            f"workers must be an int, got {self.workers!r}",
        )
        require_positive(self.workers, "workers")
        require(
            isinstance(self.cache, bool),
            f"cache must be a bool, got {self.cache!r}",
        )


@dataclass
class GAResult:
    """Outcome of a GA run.

    ``evaluations`` counts actual fitness invocations — with a caching
    backend that is the number of *unique* evaluations; ``cache_hits``
    and ``cache_misses`` expose the memoizer's counters (zero for
    uncached backends). ``layer_cache`` carries the evaluator's
    per-layer cost-cache counters for the run, attached by the level
    drivers (``None`` when the fitness has no evaluator or the layer
    cache is disabled). ``worker_layer_cache`` carries the *pool
    workers'* private layer-cache counters, shipped back with each
    fanned-out sub-problem result and merged by the level-1 driver
    (``None`` when nothing fanned out); the in-process ``layer_cache``
    delta and this field partition the run's pricing activity, so
    their :meth:`~repro.core.evaluator.LayerCacheStats.merge` is the
    whole-run figure.
    """

    best_genome: np.ndarray
    best_fitness: float
    history: list[float] = field(default_factory=list)
    evaluations: int = 0
    generations_run: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    layer_cache: "LayerCacheStats | None" = None
    worker_layer_cache: "LayerCacheStats | None" = None


class GeneticAlgorithm:
    """Minimizes ``fitness(genome)`` over [0, 1]^genome_length.

    Evaluation goes through, in order of precedence:

    1. ``batch_fitness`` — a caller-supplied population evaluator;
    2. ``backend`` — an explicit :class:`EvaluationBackend`;
    3. the backend implied by ``config.workers``/``config.cache``
       (serial by default), built with ``key_fn`` as the memoization
       key when caching is on.
    """

    def __init__(
        self,
        genome_length: int,
        fitness: Callable[[np.ndarray], float],
        config: GAConfig,
        rng: np.random.Generator,
        seeds: list[np.ndarray] | None = None,
        backend: EvaluationBackend | None = None,
        batch_fitness: BatchFitness | None = None,
        key_fn: KeyFn | None = None,
        on_generation: Callable[[int], None] | None = None,
    ):
        require_positive(genome_length, "genome_length")
        self.genome_length = genome_length
        self.fitness = fitness
        self.config = config
        self.rng = rng
        self.seeds = seeds or []
        for seed in self.seeds:
            require(
                len(seed) == genome_length,
                f"seed genome has length {len(seed)}, expected {genome_length}",
            )
        self.batch_fitness = batch_fitness
        self._owns_backend = backend is None and batch_fitness is None
        self.backend = (
            backend
            if backend is not None
            else (None if batch_fitness is not None else make_backend(config, key_fn))
        )
        self._batch_evaluations = 0
        # Pure observation hook, called after each population evaluation
        # with the number of generations evaluated so far. It must never
        # consume engine RNG — liveness beacons ride it (see
        # repro.core.health) and must not perturb search trajectories.
        self.on_generation = on_generation

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _evaluate_population(self, population: Sequence[np.ndarray]) -> np.ndarray:
        genomes = [np.asarray(g) for g in population]
        if self.batch_fitness is not None:
            values = self.batch_fitness(genomes)
            self._batch_evaluations += len(genomes)
        else:
            # Population-level preparation (e.g. the level-2 vectorized
            # genome decode) runs before per-genome evaluation; see
            # EvaluationBackend.prepare. Purely wall-clock: the memos it
            # fills would be filled genome by genome otherwise.
            self.backend.prepare(self.fitness, genomes)
            values = self.backend.evaluate(self.fitness, genomes)
        require(
            len(values) == len(genomes),
            "population evaluation returned "
            f"{len(values)} values for {len(genomes)} genomes",
        )
        return np.asarray(values, dtype=float)

    def _stats(self) -> BackendStats:
        # batch_fitness takes evaluation precedence (see __init__), so
        # it must also own the counters even when a backend was passed.
        if self.batch_fitness is not None:
            return BackendStats(evaluations=self._batch_evaluations)
        return self.backend.stats

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def _initial_population(self) -> np.ndarray:
        pop = self.rng.random((self.config.population_size, self.genome_length))
        for i, seed in enumerate(self.seeds[: self.config.population_size]):
            pop[i] = np.clip(np.asarray(seed, dtype=float), 0.0, 1.0)
        return pop

    def _tournament(self, fitnesses: np.ndarray) -> int:
        contenders = self.rng.integers(
            0, len(fitnesses), size=self.config.tournament_size
        )
        return int(contenders[np.argmin(fitnesses[contenders])])

    def _crossover(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.rng.random() >= self.config.crossover_rate:
            return a.copy()
        mask = self.rng.random(self.genome_length) < 0.5
        child = np.where(mask, a, b)
        return child

    def _mutate(self, genome: np.ndarray) -> np.ndarray:
        mask = self.rng.random(self.genome_length) < self.config.mutation_rate
        noise = self.rng.normal(0.0, self.config.mutation_sigma, self.genome_length)
        mutated = genome + mask * noise
        return np.clip(mutated, 0.0, 1.0)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> GAResult:
        start = self._stats()
        try:
            return self._run(start)
        finally:
            if self._owns_backend and self.backend is not None:
                self.backend.close()

    def _run(self, start: BackendStats) -> GAResult:
        population = self._initial_population()
        fitnesses = self._evaluate_population(population)
        if self.on_generation is not None:
            self.on_generation(0)
        best_index = int(np.argmin(fitnesses))
        best_genome = population[best_index].copy()
        best_fitness = float(fitnesses[best_index])
        history = [best_fitness]
        stagnant = 0
        generations_run = 0

        for _ in range(self.config.generations):
            generations_run += 1
            elite_order = np.argsort(fitnesses)
            next_population = [
                population[i].copy()
                for i in elite_order[: self.config.elite_count]
            ]
            while len(next_population) < self.config.population_size:
                parent_a = population[self._tournament(fitnesses)]
                parent_b = population[self._tournament(fitnesses)]
                child = self._mutate(self._crossover(parent_a, parent_b))
                next_population.append(child)
            population = np.array(next_population)
            fitnesses = self._evaluate_population(population)
            if self.on_generation is not None:
                self.on_generation(generations_run)

            generation_best = int(np.argmin(fitnesses))
            if fitnesses[generation_best] < best_fitness - 1e-15:
                best_fitness = float(fitnesses[generation_best])
                best_genome = population[generation_best].copy()
                stagnant = 0
            else:
                stagnant += 1
            history.append(best_fitness)
            if stagnant >= self.config.patience:
                break

        spent = self._stats().since(start)
        return GAResult(
            best_genome=best_genome,
            best_fitness=best_fitness,
            history=history,
            evaluations=spent.evaluations,
            generations_run=generations_run,
            cache_hits=spent.cache_hits,
            cache_misses=spent.cache_misses,
        )
