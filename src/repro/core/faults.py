"""Deterministic fault injection for the serving fleet.

The fault suites used to force failures from the *outside* — grab a
shard handle and ``process.kill()`` it at roughly the right moment.
That can exercise the crash path, but not the hang path (there is no
way to wedge a worker from outside without racing it), and the timing
is only as deterministic as the test's polling.

A :class:`FaultPlan` moves the failure *inside* the worker: it ships
to every shard worker as part of the picklable
:class:`~repro.core.config.SearchConfig` (a test/bench knob — it is
excluded from both config fingerprints, so planned faults never
perturb content addressing or stored-artifact keys), and each worker
consults it before serving a request. A fault fires on an exact
``(shard, worker incarnation, Nth request)`` coordinate, so "the
replacement worker after the first respawn hangs on its second
request" is a one-line spec instead of a race.

Supported kinds:

* ``"hang"`` — stop replying forever (optionally ignoring SIGTERM to
  force the watchdog's SIGKILL escalation rung).
* ``"crash"`` — die without a reply (``os._exit``), exercising the
  broken-pipe respawn path.
* ``"slow"`` — sleep ``delay`` seconds, then serve normally.
* ``"corrupt"`` — send a malformed reply instead of a real one.

Used by ``tests/core/test_health.py``, ``tests/core/test_serving_faults.py``
and the stalled-shard leg of ``benchmarks/bench_serving.py``.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from repro.utils.validation import require

__all__ = ["FAULT_KINDS", "FaultPlan", "FaultSpec", "execute_fault"]

FAULT_KINDS = ("hang", "crash", "slow", "corrupt")

#: A deliberately malformed reply (a list, not the ``(status, payload)``
#: tuple of the worker protocol) — what a "corrupt" fault sends.
CORRUPT_REPLY = ["corrupt-reply", "injected"]


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault at an exact serving coordinate.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        at_request: 0-based index among the search requests served by
            the matching worker incarnation (``search``/``search_fp``
            only; stats and shutdown probes don't advance it).
        shard: Shard index the fault applies to; ``None`` matches any
            shard.
        incarnation: Worker incarnation (respawns + restarts at spawn
            time) the fault applies to. Defaults to 0 — the original
            worker — so a respawned replacement does not re-trigger
            the same fault and wedge the shard into its fallback.
            ``None`` matches every incarnation.
        delay: Sleep length for ``"slow"`` faults (real seconds).
        ignore_sigterm: For ``"hang"``: install ``SIG_IGN`` for
            SIGTERM first, so only the frontend's SIGKILL escalation
            rung can clear the worker.
    """

    kind: str
    at_request: int = 0
    shard: int | None = None
    incarnation: int | None = 0
    delay: float = 0.0
    ignore_sigterm: bool = False

    def __post_init__(self) -> None:
        require(
            self.kind in FAULT_KINDS,
            f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}",
        )
        require(
            self.at_request >= 0,
            f"at_request must be >= 0, got {self.at_request}",
        )
        require(self.delay >= 0.0, f"delay must be >= 0, got {self.delay}")

    def matches(self, shard: int, incarnation: int, request_index: int) -> bool:
        if self.shard is not None and self.shard != shard:
            return False
        if self.incarnation is not None and self.incarnation != incarnation:
            return False
        return self.at_request == request_index


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of planned faults, shipped inside ``SearchConfig``.

    Picklable and hashable (it rides a frozen config across a spawn
    boundary). First matching spec wins when two target the same
    coordinate.
    """

    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        require(
            all(isinstance(spec, FaultSpec) for spec in self.faults),
            "FaultPlan.faults must contain only FaultSpec entries",
        )

    def fault_for(
        self, shard: int, incarnation: int, request_index: int
    ) -> FaultSpec | None:
        for spec in self.faults:
            if spec.matches(shard, incarnation, request_index):
                return spec
        return None


def execute_fault(spec: FaultSpec, conn) -> bool:
    """Run one fault inside a worker. Returns True if the request
    should still be served normally afterwards (only ``"slow"``).

    ``"crash"`` never returns (``os._exit`` — no atexit, no flush:
    indistinguishable from a SIGKILL'd worker on the frontend side).
    ``"hang"`` never returns either: the worker spins in ``sleep``
    until the frontend's watchdog escalates it away. ``"corrupt"``
    sends its malformed reply itself and returns False so the caller
    skips the real one.
    """
    if spec.kind == "slow":
        time.sleep(spec.delay)
        return True
    if spec.kind == "crash":
        os._exit(17)
    if spec.kind == "hang":
        if spec.ignore_sigterm:
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
        while True:
            time.sleep(3600.0)
    if spec.kind == "corrupt":
        try:
            conn.send(list(CORRUPT_REPLY))
        except (BrokenPipeError, OSError):
            pass
        return False
    raise AssertionError(f"unhandled fault kind {spec.kind!r}")
