"""MARS core: formulation, parallelism strategies, evaluator, mapper.

The paper's primary contribution. :class:`~repro.core.mapper.Mars` is
the entry point; the submodules expose each piece for direct use:

* :mod:`repro.core.formulation` — Table I notation.
* :mod:`repro.core.sharding` — ES/SS shard semantics (Fig. 2).
* :mod:`repro.core.strategy_space` — the per-layer design space.
* :mod:`repro.core.evaluator` — the latency oracle.
* :mod:`repro.core.ga` — the two-level genetic algorithm (Fig. 3).
* :mod:`repro.core.session` — warm-search sessions for server workloads.
* :mod:`repro.core.serving` — the multi-tenant session registry.
* :mod:`repro.core.frontend` — the SLO-aware async traffic layer.
* :mod:`repro.core.health` — liveness: watchdog, beacons, escalation.
* :mod:`repro.core.faults` — deterministic fault injection for tests.
* :mod:`repro.core.store` — the crash-safe persistent artifact store.
* :mod:`repro.core.baselines` — comparison mappers.
"""

from repro.core.config import SearchConfig
from repro.core.faults import FaultPlan, FaultSpec
from repro.core.evaluator import (
    EvaluatorOptions,
    LayerCacheStats,
    MappingEvaluation,
    MappingEvaluator,
)
from repro.core.formulation import (
    AcceleratorSet,
    LayerRange,
    Mapping,
    SetAssignment,
)
from repro.core.frontend import (
    AdmissionRejected,
    DeadlineExceeded,
    ServerSaturated,
    SloServing,
    SloServingStats,
    TenantQueueFull,
    TrafficPolicy,
)
from repro.core.health import LivenessPolicy, WorkerHung
from repro.core.mapper import Mars, MarsResult
from repro.core.serving import (
    MultiModelSession,
    ServingStats,
    ShardedServing,
    ShardedServingStats,
)
from repro.core.session import MarsSession, SessionStats
from repro.core.store import (
    MappingStore,
    StoreCorruption,
    StoreSpec,
    StoreStats,
)
from repro.core.sharding import (
    NO_PARALLELISM,
    ParallelismStrategy,
    ShardingPlan,
    cached_sharding_plan,
    make_sharding_plan,
    sharding_signature,
)
from repro.core.strategy_space import (
    enumerate_strategies,
    feasible_strategies,
    longest_dims_strategy,
)

__all__ = [
    "AcceleratorSet",
    "AdmissionRejected",
    "DeadlineExceeded",
    "EvaluatorOptions",
    "FaultPlan",
    "FaultSpec",
    "LayerCacheStats",
    "LayerRange",
    "LivenessPolicy",
    "Mapping",
    "MappingEvaluation",
    "MappingEvaluator",
    "MappingStore",
    "Mars",
    "MarsResult",
    "MarsSession",
    "MultiModelSession",
    "NO_PARALLELISM",
    "SearchConfig",
    "ServerSaturated",
    "ServingStats",
    "ShardedServing",
    "ShardedServingStats",
    "SloServing",
    "SloServingStats",
    "ParallelismStrategy",
    "SessionStats",
    "SetAssignment",
    "ShardingPlan",
    "StoreCorruption",
    "StoreSpec",
    "StoreStats",
    "TenantQueueFull",
    "TrafficPolicy",
    "WorkerHung",
    "cached_sharding_plan",
    "enumerate_strategies",
    "feasible_strategies",
    "longest_dims_strategy",
    "make_sharding_plan",
    "sharding_signature",
]
