"""Liveness: stall budgets, heartbeat beacons, hang kill-escalation.

The serving stack's crash policy (bounded cold respawn + resend, then
inline fallback) only ever triggered on a *dead* worker — a broken
pipe. A worker that is alive but wedged (deadlocked pool, livelocked
GA, stuck fsync) used to stall its dispatcher thread forever: the
frontend's request round-trip blocked in ``conn.recv()`` with no
deadline, so one hung shard cost every request queued behind it.

This module is the shared liveness layer both
:class:`~repro.core.serving.ShardedServing` and
:class:`~repro.core.frontend.SloServing` now run on:

* :class:`LivenessPolicy` — the knobs: a per-request **stall budget**
  (how long a worker may go silent before it is classified *hung*),
  the watchdog's poll granularity, the worker-side beacon throttle,
  the SIGTERM→SIGKILL escalation grace, and a spawn grace that keeps
  cold worker start (interpreter boot + imports) from tripping the
  budget before the worker has ever spoken.
* :func:`wait_for_reply` — the poll-with-deadline loop that replaces
  the blocking ``recv()``. Heartbeat **beacons** emitted by the worker
  between GA generations and level-2 sub-problem solves extend the
  budget, so legitimately long searches live while true wedges are
  detected within one beacon interval of the budget.
* :func:`stop_process` — the escalation ladder: graceful join →
  SIGTERM → SIGKILL + final join, so a SIGTERM-ignoring worker can
  never leak past a reap.
* :class:`BeaconEmitter` — the worker-side half of the heartbeat
  protocol: a throttled, failure-silent progress callback wired
  through :class:`~repro.core.ga.level1.Level1Search`'s ``progress``
  seam.

Everything here takes an injectable ``clock``, so every hang path is
testable deterministically with no real multi-second waits (see
``tests/core/test_health.py``); the deterministic fault *injection*
that exercises these paths lives in :mod:`repro.core.faults`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.utils.validation import require, require_positive

__all__ = [
    "BEACON",
    "BeaconEmitter",
    "LivenessPolicy",
    "WorkerHung",
    "stop_process",
    "wait_for_reply",
]

#: Message kind of a worker heartbeat: ``(BEACON, phase, count)``.
#: Beacons are consumed by the frontend's watchdog loop and never
#: surface as a request reply.
BEACON = "beacon"


class WorkerHung(RuntimeError):
    """A worker exceeded its stall budget without progress.

    Raised by :func:`wait_for_reply` to the frontend's round-trip,
    which kills the worker (escalating SIGTERM → SIGKILL), counts the
    hang, and routes the in-flight request through the same
    respawn/backoff/inline-fallback policy a crash takes — callers of
    ``submit()`` never see this exception, only a bounded stall.
    """


@dataclass(frozen=True)
class LivenessPolicy:
    """Liveness knobs of a serving frontend (picklable, ships to workers).

    Attributes:
        stall_budget: Seconds a worker may go without a reply *or* a
            beacon before its current request is classified hung and
            the worker is kill-escalated. ``None`` disables the
            watchdog entirely (the pre-liveness blocking behaviour).
        poll_interval: The watchdog's poll granularity (real seconds).
            Bounds how long past the (possibly fake-clock) budget a
            hang can go undetected.
        beacon_interval: Worker-side minimum gap between heartbeat
            beacons (real seconds) — a throttle, not a schedule; the
            worker beacons at GA-generation and sub-problem-solve
            boundaries, at most this often.
        beacons: Whether workers emit beacons at all. Off, a long
            search survives only as long as ``stall_budget``.
        term_grace: Seconds each rung of the stop ladder waits —
            graceful join, then SIGTERM + join — before escalating to
            SIGKILL. Also bounds :meth:`close` on a hung fleet.
        spawn_grace: Budget substitute for a worker incarnation that
            has never sent anything (cold interpreter boot + imports
            emit no beacons). Effective first-reply budget is
            ``max(stall_budget, spawn_grace)``; ``None`` applies the
            plain stall budget from the first request on.
    """

    stall_budget: float | None = 300.0
    poll_interval: float = 0.05
    beacon_interval: float = 0.25
    beacons: bool = True
    term_grace: float = 5.0
    spawn_grace: float | None = 300.0

    def __post_init__(self) -> None:
        if self.stall_budget is not None:
            require_positive(self.stall_budget, "stall_budget")
        require_positive(self.poll_interval, "poll_interval")
        require(
            self.beacon_interval >= 0.0,
            f"beacon_interval must be >= 0, got {self.beacon_interval}",
        )
        require(
            self.term_grace >= 0.0,
            f"term_grace must be >= 0, got {self.term_grace}",
        )
        if self.spawn_grace is not None:
            require_positive(self.spawn_grace, "spawn_grace")

    def first_reply_budget(self) -> float | None:
        """The stall budget applied before a worker has ever spoken.

        Cold start (interpreter boot, imports, registry build) emits
        no beacons, so a fresh incarnation gets the larger of the
        stall budget and the spawn grace for its first message.
        """
        if self.stall_budget is None:
            return None
        if self.spawn_grace is None:
            return self.stall_budget
        return max(self.stall_budget, self.spawn_grace)


def wait_for_reply(
    conn,
    policy: LivenessPolicy,
    clock: Callable[[], float],
    initial_budget: float | None,
    on_beacon: Callable[[tuple], None] | None = None,
):
    """Await one non-beacon message with a poll-with-deadline watchdog.

    The replacement for the frontends' blocking ``conn.recv()``:
    polls in ``policy.poll_interval`` slices, consumes heartbeat
    beacons (each one refreshes the deadline to
    ``clock() + policy.stall_budget`` — progress buys time), and
    returns the first real message. When the deadline passes with no
    message at all, raises :class:`WorkerHung`.

    ``initial_budget`` is the budget until the *first* message of this
    wait (callers pass :meth:`LivenessPolicy.first_reply_budget` for a
    fresh worker incarnation, the plain stall budget otherwise);
    ``None`` waits forever. The deadline lives on ``clock`` — inject a
    fake clock and the watchdog fires without any real waiting beyond
    one poll slice.

    Pipe-level failures (``EOFError``/``OSError``) propagate to the
    caller's crash path untouched: a dead worker is a crash, not a
    hang.
    """
    deadline = clock() + initial_budget if initial_budget is not None else None
    while True:
        if conn.poll(policy.poll_interval):
            message = conn.recv()
            if (
                isinstance(message, tuple)
                and message
                and message[0] == BEACON
            ):
                if on_beacon is not None:
                    on_beacon(message)
                if policy.stall_budget is not None:
                    deadline = clock() + policy.stall_budget
                continue
            return message
        if deadline is not None and clock() >= deadline:
            raise WorkerHung(
                f"worker silent past its stall budget "
                f"({initial_budget if policy.stall_budget is None else policy.stall_budget}s "
                "without a reply or beacon)"
            )


def stop_process(process, term_grace: float, graceful: bool = True) -> bool:
    """Stop a worker process, escalating until it is actually gone.

    The ladder: an optional graceful join window (skip it for a worker
    already classified hung — it will not exit on its own), then
    SIGTERM + join, then SIGKILL + an *unbounded* final join (SIGKILL
    cannot be ignored; the join only collects the corpse, so it cannot
    hang). Returns True when the SIGKILL rung was needed — the caller
    counts that escalation in its stats.
    """
    if process is None:
        return False
    if graceful:
        process.join(timeout=term_grace)
    if process.is_alive():
        process.terminate()
        process.join(timeout=term_grace)
    if process.is_alive():
        process.kill()
        process.join()
        return True
    return False


class BeaconEmitter:
    """Worker-side heartbeat: throttled progress beacons over the pipe.

    Plugged into the ``progress`` seam of
    :class:`~repro.core.ga.level1.Level1Search` (via the session and
    registry layers), so a shard worker beacons between level-1 GA
    generations and after each level-2 sub-problem solve. Throttled to
    at most one beacon per ``interval`` (real seconds) so a fast search
    doesn't flood the pipe, and failure-silent: once the frontend side
    of the pipe is gone (the watchdog killed us mid-send, or the
    frontend closed), beaconing stops instead of poisoning the search
    with pipe errors.

    Observation only — a beacon never consumes search RNG or alters
    any result.
    """

    __slots__ = ("_conn", "_interval", "_now", "_last", "_dead", "sent")

    def __init__(
        self,
        conn,
        interval: float,
        now: Callable[[], float] = time.monotonic,
    ) -> None:
        self._conn = conn
        self._interval = interval
        self._now = now
        self._last: float | None = None
        self._dead = False
        #: Beacons actually written to the pipe (post-throttle).
        self.sent = 0

    def __call__(self, phase: str, count: int) -> None:
        if self._dead:
            return
        now = self._now()
        if self._last is not None and now - self._last < self._interval:
            return
        self._last = now
        try:
            self._conn.send((BEACON, phase, count))
            self.sent += 1
        except (BrokenPipeError, OSError):
            self._dead = True
