"""Catalog extensions beyond the paper's Table II.

Two additional design archetypes for users exploring their own
adaptive-system configurations:

* :class:`RowStationaryDesign` — an Eyeriss-inspired row-stationary
  array: kernel rows map onto PE rows, output rows onto PE diagonals,
  so throughput *rises* with kernel height (3x3-friendly, 1x1-weak in a
  different way than Winograd: it wastes the row dimension rather than
  the transform).
* :class:`IdealRooflineDesign` — a shape-oblivious design that sustains
  its peak MACs/cycle on every layer. Useful as an experimental
  control: with an ideal catalog, design selection is moot and any
  remaining MARS gains are attributable to parallelism and
  communication placement alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerators.base import AcceleratorDesign, ceil_div
from repro.dnn.layers import ConvSpec
from repro.utils.units import mhz
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class RowStationaryDesign(AcceleratorDesign):
    """Eyeriss-style row-stationary dataflow.

    Per pass, the array holds ``filters`` output channels on
    ``array_cols`` output-row diagonals with up to ``array_rows`` kernel
    rows resolved spatially; input channels, kernel columns and output
    columns stream temporally.
    """

    array_rows: int = 12
    array_cols: int = 14
    filters: int = 16

    def __post_init__(self) -> None:
        super().__post_init__()
        require_positive(self.array_rows, "array_rows")
        require_positive(self.array_cols, "array_cols")
        require_positive(self.filters, "filters")

    def _dense_cycles(self, spec: ConvSpec) -> int:
        kernel_passes = ceil_div(spec.kernel_h, self.array_rows)
        iterations = (
            ceil_div(spec.out_channels, self.filters)
            * ceil_div(spec.out_h, self.array_cols)
            * kernel_passes
            * spec.in_channels
            * spec.kernel_w
            * spec.out_w
        )
        # Row-stationary reuse: a filter row is loaded once per pass.
        fill = self.array_rows + self.array_cols
        return iterations + fill


@dataclass(frozen=True)
class IdealRooflineDesign(AcceleratorDesign):
    """A design that always sustains ``num_pes`` MACs per cycle."""

    def _dense_cycles(self, spec: ConvSpec) -> int:
        return ceil_div(spec.macs, self.num_pes)


def eyeriss_like() -> RowStationaryDesign:
    """A 12x14 row-stationary array at 200 MHz."""
    return RowStationaryDesign(
        name="Extra (row-stationary)",
        frequency_hz=mhz(200),
        num_pes=504,  # 12 x 14 PEs x 3 effective MACs on 3x3 kernels
        array_rows=12,
        array_cols=14,
        filters=16,
    )


def ideal_roofline(num_pes: int = 512) -> IdealRooflineDesign:
    """A shape-oblivious control design at 200 MHz."""
    return IdealRooflineDesign(
        name=f"Ideal roofline ({num_pes} PEs)",
        frequency_hz=mhz(200),
        num_pes=num_pes,
    )


def extended_catalog() -> list[AcceleratorDesign]:
    """Table II plus the two extension designs."""
    from repro.accelerators.registry import table2_designs

    return table2_designs() + [eyeriss_like(), ideal_roofline()]
