"""Fixed heterogeneous accelerator catalog for the H2H comparison.

H2H [7] maps heterogeneous models onto *fixed* heterogeneous
accelerators; its released performance models are not available, so per
DESIGN.md we build a four-design catalog in the same spirit: CNN
accelerators of comparable peak throughput (~400-500 MACs/cycle at
200 MHz) whose *dataflow preferences* differ — each wins a different
class of layer shapes, which is exactly what makes computation-aware
assignment matter. Peaks are kept comparable (no 10x cliffs) because
MARS's stall-until-slowest rule for mixed sets (Section VI-C) would
otherwise forbid any multi-accelerator parallelism, for either mapper.

* ``H2H-A`` — balanced tiled design (all-rounder).
* ``H2H-B`` — output-channel-heavy tiled design (deep 1x1 layers).
* ``H2H-C`` — input-channel-parallel systolic array (channel-rich
  mid-network layers; weak on low-channel stems).
* ``H2H-D`` — spatially tiled design with narrow ``Tn`` (high-resolution
  early layers, like Design 1 of Table II).

Both mappers in the Table IV experiment see exactly this catalog, so
the comparison isolates the mapping algorithms, as in the paper.
"""

from __future__ import annotations

from repro.accelerators.base import AcceleratorDesign
from repro.accelerators.superlip import SuperLIPDesign
from repro.accelerators.systolic import SystolicDesign
from repro.utils.units import mhz


def h2h_design_a() -> SuperLIPDesign:
    """Balanced tiled design: moderate Cout/Cin parallelism."""
    return SuperLIPDesign(
        name="H2H-A (tiled balanced)",
        frequency_hz=mhz(200),
        num_pes=384,
        tm=32,
        tn=12,
        tr=7,
        tc=14,
    )


def h2h_design_b() -> SuperLIPDesign:
    """Output-channel-heavy tiled design: excels on deep, wide layers."""
    return SuperLIPDesign(
        name="H2H-B (tiled wide-Cout)",
        frequency_hz=mhz(200),
        num_pes=384,
        tm=96,
        tn=4,
        tr=7,
        tc=7,
    )


def h2h_design_c() -> SystolicDesign:
    """Input-channel-parallel systolic array.

    Sixteen rows over ``Cin``: strong once channels are wide, wasteful
    on 3-channel stems — the lopsidedness H2H's computation-aware
    assignment exploits.
    """
    return SystolicDesign(
        name="H2H-C (systolic)",
        frequency_hz=mhz(200),
        num_pes=512,
        rows=16,
        cols=8,
        vec=8,
    )


def h2h_design_d() -> SuperLIPDesign:
    """Spatially tiled design with narrow Tn: high-resolution layers."""
    return SuperLIPDesign(
        name="H2H-D (tiled spatial)",
        frequency_hz=mhz(200),
        num_pes=384,
        tm=64,
        tn=6,
        tr=14,
        tc=14,
    )


def h2h_catalog() -> list[AcceleratorDesign]:
    """The four fixed designs used by the Table IV experiment."""
    return [h2h_design_a(), h2h_design_b(), h2h_design_c(), h2h_design_d()]
