"""Analytical accelerator performance models (Table II of the paper).

Three adaptive-system design candidates — a SuperLIP-style tiled
accelerator, a systolic array, and a Winograd engine — plus the fixed
heterogeneous catalog used by the H2H comparison (Table IV).
"""

from repro.accelerators.base import (
    AcceleratorDesign,
    cached_conv_cycles,
    ceil_div,
)
from repro.accelerators.extra import (
    IdealRooflineDesign,
    RowStationaryDesign,
    extended_catalog,
    eyeriss_like,
    ideal_roofline,
)
from repro.accelerators.h2h_designs import h2h_catalog
from repro.accelerators.profiler import (
    LayerProfile,
    WorkloadProfile,
    profile_designs,
    profile_layer,
)
from repro.accelerators.registry import all_designs, design_by_name, table2_designs
from repro.accelerators.superlip import SuperLIPDesign, design1_superlip
from repro.accelerators.systolic import SystolicDesign, design2_systolic
from repro.accelerators.winograd import WinogradDesign, design3_winograd

__all__ = [
    "AcceleratorDesign",
    "IdealRooflineDesign",
    "LayerProfile",
    "RowStationaryDesign",
    "SuperLIPDesign",
    "SystolicDesign",
    "WinogradDesign",
    "WorkloadProfile",
    "all_designs",
    "cached_conv_cycles",
    "ceil_div",
    "design1_superlip",
    "design2_systolic",
    "design3_winograd",
    "design_by_name",
    "extended_catalog",
    "eyeriss_like",
    "h2h_catalog",
    "ideal_roofline",
    "profile_designs",
    "profile_layer",
    "table2_designs",
]
