"""Design registry: Table II defaults and lookup by name."""

from __future__ import annotations

from repro.accelerators.base import AcceleratorDesign
from repro.accelerators.h2h_designs import h2h_catalog
from repro.accelerators.superlip import design1_superlip
from repro.accelerators.systolic import design2_systolic
from repro.accelerators.winograd import design3_winograd


def table2_designs() -> list[AcceleratorDesign]:
    """The three adaptive-system design candidates of Table II."""
    return [design1_superlip(), design2_systolic(), design3_winograd()]


def all_designs() -> list[AcceleratorDesign]:
    """Every named design: Table II plus the H2H fixed catalog."""
    return table2_designs() + h2h_catalog()


def design_by_name(name: str) -> AcceleratorDesign:
    """Look a design up by its exact name.

    Raises :class:`KeyError` listing the catalog when not found.
    """
    for design in all_designs():
        if design.name == name:
            return design
    known = ", ".join(d.name for d in all_designs())
    raise KeyError(f"unknown design {name!r}; available: {known}")
