"""Design 2: systolic-array CNN accelerator (Wei et al., DAC'17 [15]).

A 2-D systolic array of ``row x col`` PEs with ``vec``-wide packed
operands per PE. We adopt the standard channel-parallel mapping: array
rows spread over input channels, columns over output channels, and the
vector lanes process packed output pixels along ``W`` (two packed
16-bit operands per DSP, so ``vec = 8`` data lanes sustain
``vec_macs = 4`` MACs/cycle/PE-column-row).

Table II parameters: ``row, col, vec = 11, 13, 8`` at 200 MHz with
572 PEs (= ``11 * 13 * 4`` effective MAC units).

Behaviour that matters for the mapping study: utilization collapses on
layers with few input channels (``ceil(3/11)`` wastes 8/11 of the rows
on the stem layer) but approaches peak on deep layers with wide
``Cin``/``Cout`` — which is why MARS assigns mid/late network stages to
this design in Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerators.base import AcceleratorDesign, ceil_div
from repro.dnn.layers import ConvSpec
from repro.utils.units import mhz
from repro.utils.validation import require, require_positive


@dataclass(frozen=True)
class SystolicDesign(AcceleratorDesign):
    """Systolic array with design parameters ``(row, col, vec)``."""

    rows: int = 11
    cols: int = 13
    vec: int = 8

    def __post_init__(self) -> None:
        super().__post_init__()
        require_positive(self.rows, "rows")
        require_positive(self.cols, "cols")
        require_positive(self.vec, "vec")
        require(self.vec % 2 == 0, f"vec must be even (packed pairs), got {self.vec}")

    @property
    def vec_macs(self) -> int:
        """MACs per cycle per array cell: two packed operands per MAC."""
        return self.vec // 2

    def _dense_cycles(self, spec: ConvSpec) -> int:
        iterations = (
            ceil_div(spec.in_channels, self.rows)
            * ceil_div(spec.out_channels, self.cols)
            * ceil_div(spec.out_w, self.vec_macs)
            * spec.out_h
            * spec.kernel_h
            * spec.kernel_w
        )
        # Pipeline fill/drain: the wavefront crosses the array once per
        # layer; subsequent tiles stream back-to-back.
        fill = self.rows + self.cols
        return iterations + fill


def design2_systolic() -> SystolicDesign:
    """Table II row 2: systolic array, 200 MHz, 572 PEs, row/col/vec=11/13/8."""
    return SystolicDesign(
        name="Design 2 (Systolic)",
        frequency_hz=mhz(200),
        num_pes=572,
        rows=11,
        cols=13,
        vec=8,
    )
