"""Profiling accelerator designs over a workload before the search.

Section V of the paper: *"MARS profiles the performance of accelerator
designs on the layers of the DNN workload according to analytical models
before the search. The gene value of these designs at the first
generation is initialized according to the normalized performance."*

:func:`profile_designs` produces exactly that table; it also backs the
Table II benchmark report.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING

from repro.accelerators.base import AcceleratorDesign, cached_conv_cycles
from repro.dnn.graph import ComputationGraph, LayerNode

if TYPE_CHECKING:  # deferred: repro.core.ga depends on this module
    from repro.core.ga.backends import EvaluationBackend


@dataclass(frozen=True)
class LayerProfile:
    """Per-layer cycle counts and utilization across all designs."""

    layer_name: str
    cycles: dict[str, int]
    utilization: dict[str, float]

    def best_design(self) -> str:
        return min(self.cycles, key=lambda name: self.cycles[name])


@dataclass(frozen=True)
class WorkloadProfile:
    """A workload profiled against a design catalog."""

    workload_name: str
    layers: list[LayerProfile]
    total_cycles: dict[str, int]

    def normalized_scores(self) -> dict[str, float]:
        """Per-design scores in (0, 1], higher = faster on this workload.

        The score is the ratio of the fastest design's total cycles to
        each design's total cycles, which is the normalized-performance
        initialization the first-level GA uses.
        """
        fastest = min(self.total_cycles.values())
        return {
            name: fastest / cycles for name, cycles in self.total_cycles.items()
        }

    def wins_per_design(self) -> dict[str, int]:
        """How many layers each design wins outright."""
        wins = {name: 0 for name in self.total_cycles}
        for layer in self.layers:
            wins[layer.best_design()] += 1
        return wins


def profile_layer(
    node: LayerNode, designs: list[AcceleratorDesign]
) -> LayerProfile:
    """Cycle counts for one compute layer on every design."""
    spec = node.conv_spec()
    cycles = {d.name: cached_conv_cycles(d, spec) for d in designs}
    utilization = {d.name: d.utilization(spec) for d in designs}
    return LayerProfile(node.name, cycles, utilization)


def profile_designs(
    graph: ComputationGraph,
    designs: list[AcceleratorDesign],
    backend: "EvaluationBackend | None" = None,
) -> WorkloadProfile:
    """Profile every compute layer of ``graph`` on every design.

    With an evaluation ``backend`` (see :mod:`repro.core.ga.backends`),
    layers are profiled through ``backend.map`` — parallel backends
    profile large workloads concurrently.
    """
    if not designs:
        raise ValueError("design catalog is empty")
    compute_nodes = graph.compute_nodes()
    if backend is None:
        layers = [profile_layer(node, designs) for node in compute_nodes]
    else:
        layers = backend.map(
            partial(profile_layer, designs=designs), compute_nodes
        )
    if not layers:
        raise ValueError(f"workload {graph.name!r} has no compute layers")
    totals = {design.name: 0 for design in designs}
    for layer in layers:
        for name, cycles in layer.cycles.items():
            totals[name] += cycles
    return WorkloadProfile(graph.name, layers, totals)
