"""Design 1: SuperLIP-style tiled CNN accelerator (Jiang et al. [14]).

The classic output-stationary tiled dataflow (Zhang et al., FPGA'15
lineage): the loop nest is tiled with factors ``(Tm, Tn, Tr, Tc)`` over
``(Cout, Cin, H, W)``; a ``Tm x Tn`` MAC array consumes one ``(Tr, Tc)``
output tile in ``Tr * Tc * Kh * Kw`` cycles per ``(Tm, Tn)`` tile pair.

Table II parameters: ``Tm, Tn, Tr, Tc = 64, 7, 7, 14`` at 200 MHz with
438 PEs (the post-synthesis DSP count; the arithmetic peak is
``Tm * Tn = 448`` MACs/cycle).

Why it wins early CNN layers (paper Section VI-B): the first layers have
few input channels (``Cin = 3``), and ``Tn = 7`` wastes less of the
input-channel parallelism than designs that spread wider over ``Cin``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerators.base import AcceleratorDesign, ceil_div
from repro.dnn.layers import ConvSpec
from repro.utils.units import mhz
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class SuperLIPDesign(AcceleratorDesign):
    """Tiled accelerator with design parameters ``(Tm, Tn, Tr, Tc)``."""

    tm: int = 64
    tn: int = 7
    tr: int = 7
    tc: int = 14

    def __post_init__(self) -> None:
        super().__post_init__()
        require_positive(self.tm, "tm")
        require_positive(self.tn, "tn")
        require_positive(self.tr, "tr")
        require_positive(self.tc, "tc")

    def _dense_cycles(self, spec: ConvSpec) -> int:
        tile_iterations = (
            ceil_div(spec.out_channels, self.tm)
            * ceil_div(spec.in_channels, self.tn)
            * ceil_div(spec.out_h, self.tr)
            * ceil_div(spec.out_w, self.tc)
        )
        cycles_per_tile = self.tr * self.tc * spec.kernel_h * spec.kernel_w
        # Small fixed overhead per tile for load/drain of the line buffers.
        overhead_per_tile = self.tr + self.tc
        return tile_iterations * (cycles_per_tile + overhead_per_tile)


def design1_superlip() -> SuperLIPDesign:
    """Table II row 1: SuperLIP, 200 MHz, 438 PEs, Tm/Tn/Tr/Tc=64/7/7/14."""
    return SuperLIPDesign(
        name="Design 1 (SuperLIP)",
        frequency_hz=mhz(200),
        num_pes=438,
        tm=64,
        tn=7,
        tr=7,
        tc=14,
    )
