"""Design 3: Winograd fast-convolution accelerator (Lu et al., FCCM'17 [16]).

The engine computes F(6x6, 3x3) Winograd tiles: each 8x8 transformed
input tile yields a 6x6 output tile with 64 element-wise multiplies per
``(Cin, Cout)`` pair instead of the naive ``6*6*3*3 = 324`` MACs (a
5.06x arithmetic reduction). ``Pn x Pm`` channel pairs are processed in
parallel; the 64 transform-domain multiplies of a tile are pipelined
over 9 cycles, sustaining ``Pn * Pm * 36`` effective (naive-equivalent)
MACs per cycle on 3x3 convolutions.

Table II parameters: ``n, Pn, Pm = 6, 2, 8`` at 200 MHz with 576 PEs
(= ``2 * 8 * 36`` effective MAC units).

The catch the paper highlights (Section VI-B): Winograd only pays off
for 3x3 kernels. Other kernel sizes bypass the transform and fall back
to the element-wise multiplier array with only ``Pn * Pm`` MACs/cycle —
which is why Design 3 never shows up in the 1x1-heavy bottleneck models
(ResNet-101, WRN-50-2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerators.base import AcceleratorDesign, ceil_div
from repro.dnn.layers import ConvSpec
from repro.utils.units import mhz
from repro.utils.validation import require, require_positive


@dataclass(frozen=True)
class WinogradDesign(AcceleratorDesign):
    """Winograd F(n x n, 3 x 3) engine with ``(n, Pn, Pm)`` parallelism."""

    tile: int = 6
    pn: int = 2
    pm: int = 8

    def __post_init__(self) -> None:
        super().__post_init__()
        require_positive(self.tile, "tile")
        require_positive(self.pn, "pn")
        require_positive(self.pm, "pm")
        require(self.tile >= 2, f"Winograd tile must be >= 2, got {self.tile}")

    @property
    def _transform_cycles_per_tile(self) -> int:
        """Cycles to stream one tile's transform-domain multiplies."""
        transformed = (self.tile + 2) * (self.tile + 2)  # 8x8 for F(6,3)
        naive = self.tile * self.tile * 9  # 324 naive MACs per tile
        # Pipeline the `transformed` multiplies so effective throughput is
        # tile*tile naive-MACs per cycle per channel pair.
        return ceil_div(naive, self.tile * self.tile)  # = 9 cycles

    def _dense_cycles(self, spec: ConvSpec) -> int:
        if spec.kernel_h == 3 and spec.kernel_w == 3:
            return self._winograd_cycles(spec)
        return self._fallback_cycles(spec)

    def _winograd_cycles(self, spec: ConvSpec) -> int:
        tiles = ceil_div(spec.out_h, self.tile) * ceil_div(spec.out_w, self.tile)
        channel_iterations = ceil_div(spec.in_channels, self.pn) * ceil_div(
            spec.out_channels, self.pm
        )
        cycles = tiles * channel_iterations * self._transform_cycles_per_tile
        # Input/output transform pipelines add a per-tile constant.
        transform_overhead = tiles * 2
        return cycles + transform_overhead

    def _fallback_cycles(self, spec: ConvSpec) -> int:
        """Non-3x3 kernels: only the Pn*Pm multiplier grid is usable."""
        macs = spec.macs
        return ceil_div(macs, self.pn * self.pm)


def design3_winograd() -> WinogradDesign:
    """Table II row 3: Winograd engine, 200 MHz, 576 PEs, n/Pn/Pm=6/2/8."""
    return WinogradDesign(
        name="Design 3 (Winograd)",
        frequency_hz=mhz(200),
        num_pes=576,
        tile=6,
        pn=2,
        pm=8,
    )
