"""Base class and shared machinery for accelerator performance models.

The paper (Section III) evaluates each accelerator design through an
*analytical performance model* that maps a convolution loop nest to a
cycle count. Designs differ in which loop dimensions they parallelize,
so the same layer can show large performance gaps across designs — the
heterogeneity MARS exploits.

All models implement :meth:`AcceleratorDesign.conv_cycles`; lightweight
layers (pool / BN / activation / elementwise) share an element-throughput
model in :meth:`AcceleratorDesign.layer_seconds`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.dnn.graph import LayerNode
from repro.dnn.layers import ConvSpec
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class AcceleratorDesign:
    """An accelerator design candidate (one row of Table II).

    Attributes:
        name: Human-readable identifier used in mapping reports.
        frequency_hz: Clock frequency; the paper fixes 200 MHz for all
            designs to keep theoretical throughput comparable.
        num_pes: Processing-element count as reported in Table II
            (used for reporting and the element-wise layer model).
    """

    name: str
    frequency_hz: float
    num_pes: int

    def __post_init__(self) -> None:
        require_positive(self.frequency_hz, "frequency_hz")
        require_positive(self.num_pes, "num_pes")

    # ------------------------------------------------------------------
    # Core model: convolution cycles
    # ------------------------------------------------------------------

    def conv_cycles(self, spec: ConvSpec) -> int:
        """Cycle count for one convolution workload.

        Grouped convolutions are normalized here: output-channel
        parallelism still covers all of ``Cout`` (each output channel
        reads only its group), but input-channel lanes see just the
        per-group slice — which is why depthwise layers utilize
        channel-parallel accelerators poorly. Subclasses implement the
        dense model in :meth:`_dense_cycles`.
        """
        if spec.groups == 1:
            return self._dense_cycles(spec)
        from dataclasses import replace

        grouped_view = replace(
            spec, in_channels=spec.in_channels // spec.groups, groups=1
        )
        return self._dense_cycles(grouped_view)

    def _dense_cycles(self, spec: ConvSpec) -> int:
        """Dense (groups = 1) cycle model. Subclasses override."""
        raise NotImplementedError

    def conv_seconds(self, spec: ConvSpec) -> float:
        return self.conv_cycles(spec) / self.frequency_hz

    def utilization(self, spec: ConvSpec) -> float:
        """Achieved MACs/cycle relative to the design's PE count.

        This is the quantity behind the paper's Section VI-B analysis
        ("the shape of the layer cannot saturate the PEs"). Values are
        in (0, 1] for well-behaved models but may exceed 1 slightly when
        the reported PE count differs from the arithmetic peak (e.g.
        post-synthesis DSP counts).
        """
        cycles = self.conv_cycles(spec)
        if cycles <= 0:
            return 0.0
        return spec.macs / (cycles * self.num_pes)

    # ------------------------------------------------------------------
    # Whole-layer model
    # ------------------------------------------------------------------

    def layer_cycles(self, node: LayerNode) -> int:
        """Cycles for any graph layer.

        Conv/FC layers go through the analytical model; other layers use
        an element-throughput model (one output element per PE per
        cycle), which keeps them small but non-zero, as in the paper's
        simulator integration.
        """
        if node.is_compute:
            return self.conv_cycles(node.conv_spec())
        if node.kind == "inputlayer":
            return 0
        numel = node.output_shape.numel
        return -(-numel // self.num_pes)  # ceil division

    def layer_seconds(self, node: LayerNode) -> float:
        return self.layer_cycles(node) / self.frequency_hz

    def __str__(self) -> str:
        return self.name


def ceil_div(value: int, divisor: int) -> int:
    """Ceiling division for loop-tiling math; rejects non-positive divisors."""
    if divisor <= 0:
        raise ValueError(f"divisor must be > 0, got {divisor}")
    return -(-value // divisor)


@lru_cache(maxsize=65536)
def cached_conv_cycles(design: AcceleratorDesign, spec: ConvSpec) -> int:
    """Memoized conv-cycle lookup.

    The GA inner loop costs the same (design, shard-spec) pair many
    times; both arguments are frozen dataclasses, hence hashable. A
    shared cache across designs keeps the memory bound predictable.
    """
    return design.conv_cycles(spec)
