"""MARS reproduction: multi-level parallelism mapping for DNN workloads
on adaptive multi-accelerator systems (Shen et al., DAC 2023).

Public API tour:

* :mod:`repro.dnn` — workload IR and model zoo.
* :mod:`repro.accelerators` — analytical accelerator performance models.
* :mod:`repro.system` — multi-accelerator topologies and presets.
* :mod:`repro.simulator` — communication/compute latency simulation.
* :mod:`repro.core` — parallelism strategies, evaluator, two-level GA
  mapper, and the baselines.
* :mod:`repro.experiments` — runners that regenerate the paper's tables.
"""

__version__ = "1.0.0"
